//! The discrete-event serving core: one device's event loop, admission
//! control, and step execution.
//!
//! # The event loop
//!
//! A [`DeviceSim`] (crate-internal) owns one device's complete serving
//! state: its [`KvCachePool`], its suspended-victim set, its clock, and
//! its in-flight requests. The loop driven by [`crate::dispatch`] repeats
//! three phases per step:
//!
//! 1. **Admission** — resumable evicted victims and arrived queue entries
//!    are considered best-first (priority desc, arrival asc, id asc); the
//!    best candidate reserves its *peak* KV residency or, failing that,
//!    preempts strictly lower-priority victims when the configured
//!    [`crate::EvictionPolicy`] allows. When the best candidate cannot be
//!    placed, admission blocks — lower-ordered candidates never jump it.
//! 2. **Planning** — the pluggable [`Scheduler`] sees admitted prompts
//!    (with their prefill cursors) and decoding streams, and plans one
//!    batched invocation ([`StepPlan`]).
//! 3. **Execution** — the invocation is costed by the memoizing
//!    [`StepCostModel`], the device clock advances by its latency, KV
//!    residency grows, and completions retire (releasing their
//!    reservations).
//!
//! # Chunked prefill
//!
//! Each in-flight request carries a **prefill cursor**. A prefill
//! invocation advances the cursor by at most
//! [`ServeConfig::prefill_chunk`] tokens, costed incrementally by
//! [`StepCostModel::prefill_chunk_cost`], and the request's KV residency
//! grows *per chunk* (the bytes of the prefilled prefix) instead of
//! landing all at once. A request evicted mid-prefill under
//! drop-and-recompute replays **only its completed chunks** on resume —
//! the unprefilled remainder was never computed, so it is first-time
//! work, not replay; only the replayed share of each invocation is
//! attributed to `recompute_seconds`. A mid-prefill swap victim keeps its
//! cursor: swap preserves the prefix KV, so the prefill continues where
//! it stopped.
//!
//! # Reservation-ledger invariants
//!
//! Admission reserves a request's peak residency up front in the pool's
//! per-request ledger, so decode-time growth can never drive the pool
//! over budget, and releases/evictions free exactly what the ledger
//! recorded (see [`crate::pool`] — the pool asserts both invariants).
//! The simulator never reads a wall clock and draws no randomness, so a
//! `(workload, scheduler, config)` triple replays bit-identically.

use std::collections::VecDeque;

use mcbp_workloads::{Accelerator, Fleet, TraceContext};

use crate::arrival::Workload;
use crate::cost::{StepCost, StepCostModel};
use crate::dispatch::{drive, DispatchPolicy};
use crate::pool::{request_kv_bytes, KvCachePool};
use crate::preempt::{EvictionPolicy, HandoffLedger, PreemptConfig, SwapLedger};
use crate::profile::{DeviceProfile, DeviceRole};
use crate::record::{RunTrace, TraceEvent};
use crate::report::{
    HandoffReport, PoolReport, PreemptReport, PrefixReport, ServeReport, StepReport,
};
use crate::request::{PrefixId, Priority, Request, RequestId, RequestRecord, RequestState};
use crate::scheduler::{SchedEntry, SchedView, Scheduler};

/// Configuration of one serving simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Maximum streams one batched invocation may coalesce (the
    /// continuous-batching width).
    pub max_batch: usize,
    /// Context-length quantization of the step-cost cache, in tokens
    /// (costs interpolate between bucket boundaries).
    pub ctx_bucket: usize,
    /// Maximum prefill tokens one invocation advances per request.
    /// `Some(n)` splits long prompts into `n`-token chunks that the
    /// coalescing schedulers interleave with decode steps; `None`
    /// prefills every prompt in a single monolithic invocation (the
    /// pre-chunking behavior, kept as the ablation baseline).
    pub prefill_chunk: Option<usize>,
    /// Shared per-step token budget. `Some(b)` makes every scheduler step
    /// a single budgeted invocation: prefill members count their chunk's
    /// tokens, decode members count one token each, and the coalescing
    /// schedulers pack decode streams into the budget left over by the
    /// prefill chunk (Sarathi-style mixed steps — decoding advances every
    /// step while a long prompt prefills). Requires chunked prefill with
    /// `prefill_chunk ≤ b` (validated; see [`ServeConfigError`]); the
    /// piggyback slack per chunk step is `b − prefill_chunk`. `None`
    /// disables budgeting: the schedulers alternate pure prefill and pure
    /// decode steps (the pre-budget behavior, kept bit-exact as the
    /// ablation baseline).
    pub step_token_budget: Option<usize>,
    /// KV-pool byte budget per device. `Some(bytes)` is used verbatim.
    /// `None` derives the budget from the HBM capacity minus the resident
    /// INT8 weights and scales it by [`ServeConfig::fleet`]'s device
    /// count via [`KvCachePool::from_memory_spec`] (the tensor-parallel
    /// group holds one KV shard per member).
    pub kv_budget_bytes: Option<u64>,
    /// §5.3 tensor-parallel scaling applied to every step *within* one
    /// simulated device: step latency divides by the group's effective
    /// speedup and energy pays the communication tax (see
    /// [`Fleet::scale`]). This models one multi-chip serving instance;
    /// for data-parallel serving across *independent* devices with their
    /// own pools and queues, see [`ServeSim::run_fleet`].
    pub fleet: Fleet,
    /// Preemption/eviction policy and host-link bandwidth. Swap transfer
    /// latency is charged at the configured host link and is *not* scaled
    /// by the fleet (one host link per serving instance).
    pub preempt: PreemptConfig,
    /// Worker threads for the fleet drive loop. `None` (the default) and
    /// `Some(1)` run the sequential reference loop; `Some(n ≥ 2)` steps
    /// independent busy devices between dispatch points on a scoped
    /// worker pool (see `crate::dispatch` module docs). The parallel
    /// drive is bit-exact with the sequential reference — identical
    /// [`ServeReport`] and `RunTrace` — regardless of worker count, so
    /// this knob trades wall-clock time only, never results.
    pub fleet_workers: Option<usize>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_batch: 16,
            ctx_bucket: 256,
            prefill_chunk: Some(512),
            step_token_budget: None,
            kv_budget_bytes: None,
            fleet: Fleet::single(),
            preempt: PreemptConfig::default(),
            fleet_workers: None,
        }
    }
}

/// Why a [`ServeConfig`] is rejected by [`ServeConfig::validate`] — the
/// typed alternative to a downstream panic (a zero chunk would divide by
/// zero in the scheduler; a chunk wider than the step budget could never
/// be scheduled and would wedge the simulator).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeConfigError {
    /// `max_batch` is zero: no invocation could coalesce anything.
    ZeroMaxBatch,
    /// `ctx_bucket` is zero: the step-cost cache cannot quantize contexts.
    ZeroCtxBucket,
    /// `prefill_chunk == Some(0)`: a chunk invocation could never advance
    /// a prompt (use `None` for monolithic prefill instead).
    ZeroPrefillChunk,
    /// `step_token_budget == Some(0)`: no step could schedule any token.
    ZeroStepTokenBudget,
    /// The prefill chunk does not fit the step token budget, so a chunk
    /// step could never be scheduled and waiting prompts would starve.
    ChunkExceedsBudget {
        /// Configured `prefill_chunk`.
        chunk: usize,
        /// Configured `step_token_budget`.
        budget: usize,
    },
    /// A step token budget with monolithic prefill
    /// (`prefill_chunk == None`): an unbounded prefill invocation cannot
    /// be packed under any finite budget.
    BudgetRequiresChunkedPrefill,
    /// A fleet run was given no device profiles: there is no device to
    /// dispatch to.
    EmptyFleet,
    /// `fleet_workers == Some(0)`: no worker could ever step a device
    /// (use `None` for the sequential reference loop).
    ZeroFleetWorkers,
    /// A [`DeviceProfile`]'s throughput weight is zero, negative, or
    /// non-finite: weighted-JSQ dispatch would divide by it.
    ZeroThroughputProfile {
        /// Index of the offending profile within the fleet.
        device: usize,
    },
    /// A role-specialized fleet with no prefill-capable device: stage-1
    /// routing would have no candidate and every prompt would wedge.
    NoPrefillCapableDevice,
    /// A role-specialized fleet with no decode-capable device: stage-2
    /// routing would have no candidate and every finished prefill with
    /// decode work would wedge mid-handoff.
    NoDecodeCapableDevice,
    /// A request declares a shared prefix longer than its own prompt —
    /// the prefix cannot be a prefix of that prompt.
    PrefixExceedsPrompt {
        /// The offending request.
        request: RequestId,
        /// Declared prefix length in tokens.
        prefix_tokens: usize,
        /// The request's prompt length in tokens.
        prompt_len: usize,
    },
    /// Two requests declare the same [`PrefixId`] with different lengths —
    /// ids are content-addressed, so one id must always name one prefix.
    PrefixLengthConflict {
        /// The conflicted prefix id.
        prefix: PrefixId,
        /// The first declared length, in tokens.
        tokens_a: usize,
        /// The conflicting declared length, in tokens.
        tokens_b: usize,
    },
}

impl std::fmt::Display for ServeConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeConfigError::ZeroMaxBatch => write!(f, "coalescing width must be positive"),
            ServeConfigError::ZeroCtxBucket => write!(f, "context bucket must be positive"),
            ServeConfigError::ZeroPrefillChunk => {
                write!(f, "prefill chunk must be positive (use None for unchunked)")
            }
            ServeConfigError::ZeroStepTokenBudget => {
                write!(
                    f,
                    "step token budget must be positive (use None for alternating steps)"
                )
            }
            ServeConfigError::ChunkExceedsBudget { chunk, budget } => write!(
                f,
                "prefill chunk ({chunk} tokens) exceeds the step token budget \
                 ({budget} tokens): no chunk step could ever be scheduled"
            ),
            ServeConfigError::BudgetRequiresChunkedPrefill => write!(
                f,
                "a step token budget requires chunked prefill (prefill_chunk = Some(..)): \
                 a monolithic prefill cannot be packed under a finite budget"
            ),
            ServeConfigError::EmptyFleet => {
                write!(f, "a fleet needs at least one device profile")
            }
            ServeConfigError::ZeroFleetWorkers => write!(
                f,
                "fleet workers must be positive (use None for the sequential loop)"
            ),
            ServeConfigError::ZeroThroughputProfile { device } => write!(
                f,
                "device profile {device} has a non-positive throughput weight: \
                 weighted dispatch would divide by it"
            ),
            ServeConfigError::NoPrefillCapableDevice => write!(
                f,
                "a role-specialized fleet needs at least one prefill-capable \
                 device (Unified or Prefill)"
            ),
            ServeConfigError::NoDecodeCapableDevice => write!(
                f,
                "a role-specialized fleet needs at least one decode-capable \
                 device (Unified or Decode)"
            ),
            ServeConfigError::PrefixExceedsPrompt {
                request,
                prefix_tokens,
                prompt_len,
            } => write!(
                f,
                "request {request} declares a {prefix_tokens}-token shared prefix on a \
                 {prompt_len}-token prompt: a prefix cannot outgrow its prompt"
            ),
            ServeConfigError::PrefixLengthConflict {
                prefix,
                tokens_a,
                tokens_b,
            } => write!(
                f,
                "prefix {prefix} is declared with two different lengths ({tokens_a} and \
                 {tokens_b} tokens): one content-addressed id must name one prefix"
            ),
        }
    }
}

impl std::error::Error for ServeConfigError {}

impl ServeConfig {
    /// Checks the configuration's internal consistency, returning the
    /// first violation as a typed [`ServeConfigError`] instead of letting
    /// it surface as a downstream panic or a silently wedged simulation.
    ///
    /// # Errors
    ///
    /// See [`ServeConfigError`] for the rejected shapes.
    pub fn validate(&self) -> Result<(), ServeConfigError> {
        if self.max_batch == 0 {
            return Err(ServeConfigError::ZeroMaxBatch);
        }
        if self.ctx_bucket == 0 {
            return Err(ServeConfigError::ZeroCtxBucket);
        }
        if self.prefill_chunk == Some(0) {
            return Err(ServeConfigError::ZeroPrefillChunk);
        }
        if self.fleet_workers == Some(0) {
            return Err(ServeConfigError::ZeroFleetWorkers);
        }
        match (self.step_token_budget, self.prefill_chunk) {
            (Some(0), _) => Err(ServeConfigError::ZeroStepTokenBudget),
            (Some(_), None) => Err(ServeConfigError::BudgetRequiresChunkedPrefill),
            (Some(budget), Some(chunk)) if chunk > budget => {
                Err(ServeConfigError::ChunkExceedsBudget { chunk, budget })
            }
            _ => Ok(()),
        }
    }
}

/// A request in flight: its timeline and prefill/decode progress. KV byte
/// accounting lives in the [`KvCachePool`] ledger, keyed by request id.
#[derive(Debug, Clone)]
struct InFlight {
    req: Request,
    /// First admission instant (preserved across preemptions).
    admitted_cycle: f64,
    /// The prefill cursor: tokens of `prefill_target` already processed.
    prefill_done: usize,
    /// Tokens the pending prefill must cover: the prompt, plus any
    /// already-generated tokens when a drop-and-recompute victim replays.
    prefill_target: usize,
    /// Leading portion of `prefill_target` that recomputes KV an eviction
    /// discarded (0 for fresh prompts). Chunk invocations overlapping this
    /// region bill their share to `recompute_seconds`.
    replay_tokens: usize,
    /// Shared-prefix bytes the pool holds on this request's behalf in its
    /// refcounted prefix ledger — excluded from the request's own
    /// reservation and residency. Non-zero exactly while the request
    /// holds one reference on its prefix entry (a reusing request from
    /// admission on; a materializing request from the step whose cursor
    /// crossed the prefix boundary).
    prefix_bytes: u64,
    tokens: usize,
    first_token_cycle: f64,
    preemptions: usize,
}

impl InFlight {
    fn context(&self) -> usize {
        self.req.prompt_len + self.tokens
    }

    fn prefilled(&self) -> bool {
        self.prefill_done >= self.prefill_target
    }
}

/// An evicted request waiting to resume: its progress survives eviction,
/// only its device-resident KV is gone (discarded or held in host memory).
#[derive(Debug, Clone)]
struct Suspended {
    req: Request,
    admitted_cycle: f64,
    tokens: usize,
    first_token_cycle: f64,
    preemptions: usize,
    /// Prefill cursor at eviction. A swap victim resumes from it (its
    /// prefix KV is preserved in host memory); a drop-and-recompute
    /// victim restarts from zero and replays exactly this many completed
    /// tokens (plus its generated tokens when the prefill had finished).
    prefill_done: usize,
    /// Prefill target at eviction.
    prefill_target: usize,
    /// Replay attribution the victim still carried at eviction.
    replay_tokens: usize,
    /// KV bytes held in the swap ledger (0 under drop-and-recompute).
    swapped_bytes: u64,
}

impl Suspended {
    /// Queue-ordering arrival key (closed-loop releases carry infinity;
    /// fall back to the first admission instant).
    fn arrival_key(&self) -> f64 {
        if self.req.arrival_cycle.is_finite() {
            self.req.arrival_cycle
        } else {
            self.admitted_cycle
        }
    }
}

/// Running preemption counters (cycles; converted to seconds at the end).
#[derive(Debug, Clone, Copy, Default)]
struct PreemptTally {
    preemptions: u64,
    swap_out_bytes: u64,
    swap_in_bytes: u64,
    swap_cycles: f64,
    recompute_cycles: f64,
}

/// Running prefix-cache counters (see [`crate::PrefixReport`]).
#[derive(Debug, Clone, Copy, Default)]
struct PrefixTally {
    hits: u64,
    misses: u64,
    reused_tokens: u64,
    reclaimed: u64,
    reclaimed_bytes: u64,
}

/// Running per-step composition counters (see [`crate::StepReport`]).
#[derive(Debug, Clone, Copy, Default)]
struct StepTally {
    steps: u64,
    prefill_steps: u64,
    decode_steps: u64,
    mixed_steps: u64,
    /// Sum over budgeted steps of `executed tokens / budget`.
    utilization_sum: f64,
}

/// A decode continuation leaving a [`DeviceRole::Prefill`] device: the
/// request plus the resume state its decode device needs. The prefill
/// device generates the request's *first token* before handing off (the
/// DistServe cut point — TTFT is produced entirely on the prefill side,
/// so it never waits on a second admission into the decode pool). The
/// source has already released the KV from its pool (and dropped its
/// prefix reference) — the bytes exist only here until the driver routes
/// the handoff and the destination's [`HandoffLedger`] takes custody.
pub(crate) struct HandoffOut {
    pub(crate) req: Request,
    /// First admission instant on the source device (preserved across
    /// the handoff — TTFT and stall accounting span both devices).
    pub(crate) admitted_cycle: f64,
    pub(crate) preemptions: usize,
    /// Completed prefill cursor (the decode device receives finished KV
    /// and replays nothing).
    pub(crate) prefill_done: usize,
    /// Decode cursor at departure: ≥ 1, since the source produces the
    /// first token before the continuation becomes extractable.
    pub(crate) tokens: usize,
    /// Source-device clock at which token 1 was generated (the request's
    /// TTFT endpoint, preserved verbatim across the handoff).
    pub(crate) first_token_cycle: f64,
    /// Full KV bytes leaving the source pool — prefilled prompt plus the
    /// generated-token suffix: the request's own residency plus its
    /// shared-prefix share.
    pub(crate) bytes: u64,
    /// Source-device clock at extraction — the transfer departs here and
    /// lands `transfer_cycles(bytes)` later.
    pub(crate) ready_cycle: f64,
}

/// A routed handoff riding the host link toward this device. Its bytes
/// are held by the destination's [`HandoffLedger`]; it is in neither
/// device's active or suspended set, so victim selection cannot touch it
/// (the ledger panics are the double-free backstop).
struct PendingHandoff {
    req: Request,
    admitted_cycle: f64,
    preemptions: usize,
    prefill_done: usize,
    /// Decode cursor carried from the source (≥ 1; see
    /// [`HandoffOut::tokens`]).
    tokens: usize,
    /// Source-side first-token instant (see
    /// [`HandoffOut::first_token_cycle`]).
    first_token_cycle: f64,
    /// Destination clock at which the transfer completes and the request
    /// becomes admissible.
    arrival_cycle: f64,
}

/// Running prefill→decode transfer counters (see
/// [`crate::HandoffReport`]). Outbound fields are attributed to the
/// source device, inbound fields to the destination.
#[derive(Debug, Clone, Copy, Default)]
struct HandoffTally {
    out: u64,
    in_count: u64,
    bytes_out: u64,
    bytes_in: u64,
    /// Host-link cycles the outbound transfers occupied (the transfers
    /// overlap compute DMA-style — latency lands on the request, not on
    /// the device clock — so these cycles are attribution, not stall).
    link_cycles: f64,
}

/// `a` strictly ahead of `b` in admission order: higher priority first,
/// then earlier arrival, then lower id.
fn admits_before(a: (Priority, f64, RequestId), b: (Priority, f64, RequestId)) -> bool {
    a.0 > b.0 || (a.0 == b.0 && (a.1 < b.1 || (a.1 == b.1 && a.2 < b.2)))
}

/// The resident prefix entry a request can reuse, as `(id, tokens,
/// bytes)`, or `None` when it declares no prefix or the pool does not
/// hold it.
///
/// # Panics
///
/// Panics if the resident entry disagrees with the request's declared
/// prefix length — one [`PrefixId`] must always name one prefix.
fn resident_reuse(
    pool: &KvCachePool,
    prefix: Option<crate::request::SharedPrefix>,
) -> Option<(PrefixId, usize, u64)> {
    let p = prefix.filter(|p| p.tokens > 0)?;
    let e = pool.prefix(p.id)?;
    assert_eq!(
        e.tokens, p.tokens,
        "prefix {} reused with a different declared length",
        p.id
    );
    Some((p.id, e.tokens, e.bytes))
}

/// Where a reusing request's prefill cursor starts: at the prefix
/// boundary, except that a request with no decode work left must keep at
/// least one unshared prompt token to execute (a fully-shared prompt-only
/// request would otherwise never appear in any scheduler view).
fn reuse_start(prefix_tokens: usize, target: usize, decode_remaining: usize) -> usize {
    let start = prefix_tokens.min(target);
    if decode_remaining == 0 {
        start.min(target.saturating_sub(1))
    } else {
        start
    }
}

/// The discrete-event serving simulator: drives an [`Accelerator`] under
/// multi-request load through a pluggable [`Scheduler`], with KV-pool
/// admission control, chunked prefill, priority-aware preemption, and
/// full latency accounting. Time is the simulated 1 GHz core clock; there
/// is no wall-clock dependence anywhere, so a `(workload, scheduler,
/// config)` triple replays bit-identically.
pub struct ServeSim<'a> {
    cost: StepCostModel<'a>,
    cfg: ServeConfig,
}

impl<'a> ServeSim<'a> {
    /// Builds a serving simulator over any accelerator model. `template`
    /// supplies model shapes, the measured weight profile, and the
    /// attention-keep operating point (its task/batch fields are replaced
    /// per scheduled step).
    ///
    /// # Panics
    ///
    /// Panics on an invalid configuration (see [`ServeConfig::validate`]);
    /// use [`ServeSim::try_new`] to handle the error instead.
    #[must_use]
    pub fn new(accel: &'a dyn Accelerator, template: TraceContext, cfg: ServeConfig) -> Self {
        match Self::try_new(accel, template, cfg) {
            Ok(sim) => sim,
            Err(e) => panic!("invalid ServeConfig: {e}"),
        }
    }

    /// Builds a serving simulator, rejecting inconsistent configurations
    /// with a typed error instead of a downstream panic.
    ///
    /// # Errors
    ///
    /// Returns the first [`ServeConfigError`] the configuration violates.
    pub fn try_new(
        accel: &'a dyn Accelerator,
        template: TraceContext,
        cfg: ServeConfig,
    ) -> Result<Self, ServeConfigError> {
        cfg.validate()?;
        let cost = StepCostModel::new(accel, template, cfg.ctx_bucket);
        Ok(ServeSim { cost, cfg })
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// The step-cost model (exposed for diagnostics).
    #[must_use]
    pub fn cost_model(&self) -> &StepCostModel<'a> {
        &self.cost
    }

    /// Runs one workload under one scheduler to completion on a single
    /// device. Cross-request prefix reuse is live here too: a request
    /// whose [`crate::SharedPrefix`] is already resident in the device's
    /// pool prefills only its unshared suffix.
    ///
    /// # Panics
    ///
    /// Panics on an invalid workload (see [`ServeSim::validate_workload`]),
    /// internal accounting violations (the KV pool asserts its budget
    /// invariants), or a scheduler contract violation.
    #[must_use]
    pub fn run(&self, workload: &Workload, scheduler: &mut dyn Scheduler) -> ServeReport {
        if let Err(e) = ServeSim::validate_workload(workload) {
            panic!("invalid workload: {e}");
        }
        let mut router = DispatchPolicy::RoundRobin.router();
        drive(
            self,
            workload,
            &mut [scheduler],
            &[DeviceProfile::uniform()],
            &mut router,
            false,
        )
        .0
    }

    /// Like [`ServeSim::run`], but records the run's full
    /// arrival/admission/schedule/preemption history alongside the
    /// report. The traced run is bit-exact with the untraced one —
    /// recording only observes, never perturbs — and re-running the
    /// returned trace's workload under the same configuration and
    /// scheduler reproduces the report bit-exactly (the replay contract
    /// the `mcbp-trace` crate asserts).
    ///
    /// # Panics
    ///
    /// Panics where [`ServeSim::run`] would.
    #[must_use]
    pub fn run_traced(
        &self,
        workload: &Workload,
        scheduler: &mut dyn Scheduler,
    ) -> (ServeReport, RunTrace) {
        if let Err(e) = ServeSim::validate_workload(workload) {
            panic!("invalid workload: {e}");
        }
        let mut router = DispatchPolicy::RoundRobin.router();
        let (report, trace) = drive(
            self,
            workload,
            &mut [scheduler],
            &[DeviceProfile::uniform()],
            &mut router,
            true,
        );
        (report, trace.expect("tracing was requested"))
    }

    /// Checks a workload's internal consistency: every declared
    /// [`crate::SharedPrefix`] must fit inside its request's prompt, and
    /// one [`PrefixId`] must always be declared with one length (ids are
    /// content-addressed).
    ///
    /// # Errors
    ///
    /// Returns [`ServeConfigError::PrefixExceedsPrompt`] or
    /// [`ServeConfigError::PrefixLengthConflict`] for the first
    /// offending request.
    pub fn validate_workload(workload: &Workload) -> Result<(), ServeConfigError> {
        let mut declared: std::collections::BTreeMap<PrefixId, usize> =
            std::collections::BTreeMap::new();
        for r in &workload.requests {
            if let Some(p) = r.prefix {
                if p.tokens > r.prompt_len {
                    return Err(ServeConfigError::PrefixExceedsPrompt {
                        request: r.id,
                        prefix_tokens: p.tokens,
                        prompt_len: r.prompt_len,
                    });
                }
                match declared.insert(p.id, p.tokens) {
                    Some(prior) if prior != p.tokens => {
                        return Err(ServeConfigError::PrefixLengthConflict {
                            prefix: p.id,
                            tokens_a: prior,
                            tokens_b: p.tokens,
                        });
                    }
                    _ => {}
                }
            }
        }
        Ok(())
    }

    /// The KV pool for one fleet device: the profile's explicit budget,
    /// else the [`ServeConfig::kv_budget_bytes`] behavior.
    pub(crate) fn pool_for(&self, profile: &DeviceProfile<'_>) -> KvCachePool {
        match profile.kv_budget_bytes.or(self.cfg.kv_budget_bytes) {
            Some(bytes) => KvCachePool::with_budget(bytes),
            None => KvCachePool::from_memory_spec(
                &mcbp_mem::HbmConfig::default(),
                &self.cost.template().model,
                self.cfg.fleet.devices,
            ),
        }
    }

    /// Applies the §5.3 tensor-parallel scaling model to one step: latency
    /// divides by the effective speedup, energy pays the communication tax
    /// (the same model as [`Fleet::scale`], applied per step — like it,
    /// the tax spares the bit-reorder component).
    fn fleet_scaled(&self, cost: StepCost) -> StepCost {
        let fleet = &self.cfg.fleet;
        if fleet.devices <= 1 {
            return cost;
        }
        let comm_tax = 2.0 - fleet.scaling_efficiency;
        StepCost {
            cycles: cost.cycles / fleet.speedup(),
            energy_pj: (cost.energy_pj - cost.reorder_pj) * comm_tax + cost.reorder_pj,
            reorder_pj: cost.reorder_pj,
        }
    }
}

/// One device's step-cost model: devices whose profile overrides neither
/// the accelerator nor the keep ratio share the simulator's memoized
/// model (so a uniform fleet costs each distinct invocation once,
/// fleet-wide); a heterogeneous device owns its own.
enum DeviceCost<'s, 'a> {
    Shared(&'s StepCostModel<'a>),
    Owned(Box<StepCostModel<'a>>),
}

/// One simulated device's complete serving state: local queue, KV pool,
/// suspended victims, clock, and counters. The dispatch driver
/// ([`crate::dispatch`]) owns one of these per fleet device — built from
/// its [`DeviceProfile`] — and steps whichever has runnable work and the
/// earliest clock.
pub(crate) struct DeviceSim<'s, 'a> {
    sim: &'s ServeSim<'a>,
    cost: DeviceCost<'s, 'a>,
    /// This device's preemption configuration (the simulator's, with the
    /// profile's host-link override applied).
    preempt: PreemptConfig,
    /// The profile's relative throughput weight (read by the router).
    throughput: f64,
    /// This device's dispatch role (`Unified` outside disaggregated
    /// fleets — the role gates handoff extraction, so an all-`Unified`
    /// fleet takes exactly the pre-disaggregation code paths).
    role: DeviceRole,
    pub(crate) pool: KvCachePool,
    ledger: SwapLedger,
    /// Custody of KV bytes riding the host link **into** this device
    /// (handoffs are accounted at their destination: the driver books
    /// `handoff_out` when it routes, admission books `handoff_in`).
    handoff_ledger: HandoffLedger,
    tally: PreemptTally,
    handoff_tally: HandoffTally,
    /// Finished prefills awaiting stage-2 routing (drained by the
    /// driver's dispatch fixpoint).
    outbound: Vec<HandoffOut>,
    /// Routed handoffs riding the link toward this device.
    inbound: Vec<PendingHandoff>,
    step_tally: StepTally,
    prefix_tally: PrefixTally,
    /// Requests dispatched to this device, arrival-sorted, not yet
    /// admitted.
    pending: VecDeque<Request>,
    active: Vec<InFlight>,
    suspended: Vec<Suspended>,
    pub(crate) records: Vec<RequestRecord>,
    /// This device's clock, in core cycles.
    pub(crate) now: f64,
    /// Cycles spent executing steps (plus swap stalls tallied
    /// separately), for utilization reporting.
    busy_cycles: f64,
    pub(crate) energy_pj: f64,
    pub(crate) decode_invocations: u64,
    pub(crate) decode_streams: u64,
    /// In-flight concurrency deltas on this device's clock: `(cycle, +1)`
    /// when a request enters the active set (fresh or resumed admission),
    /// `(cycle, -1)` when it leaves (eviction or completion). The fleet
    /// merge sweeps the union of every device's deltas for the true
    /// fleet-wide simultaneous peak — an order-independent reduction, so
    /// it is deterministic under parallel device stepping.
    pub(crate) conc_log: Vec<(f64, i32)>,
    pub(crate) dispatched: usize,
    /// Fleet index of this device (stamped onto recorded events).
    pub(crate) device: u32,
    /// Recorded event log of a traced run (`None` — the default — records
    /// nothing and keeps the untraced paths allocation-free).
    pub(crate) log: Option<Vec<TraceEvent>>,
}

impl<'s, 'a> DeviceSim<'s, 'a> {
    pub(crate) fn new(sim: &'s ServeSim<'a>, profile: &DeviceProfile<'a>) -> Self {
        let cost = match (profile.accel, profile.attention_keep) {
            // Inherit everything: share the simulator's memoized model so
            // a uniform fleet stays bit-exact with (and as cheap as) the
            // classic run_fleet path.
            (None, None) => DeviceCost::Shared(&sim.cost),
            (accel, keep) => {
                let template = TraceContext {
                    attention_keep: keep.unwrap_or(sim.cost.template().attention_keep),
                    ..sim.cost.template().clone()
                };
                DeviceCost::Owned(Box::new(StepCostModel::new(
                    accel.unwrap_or_else(|| sim.cost.accel()),
                    template,
                    sim.cfg.ctx_bucket,
                )))
            }
        };
        let mut preempt = sim.cfg.preempt.clone();
        if let Some(link) = profile.host_link_bytes_per_cycle {
            preempt.host_link_bytes_per_cycle = link;
        }
        DeviceSim {
            pool: sim.pool_for(profile),
            sim,
            cost,
            preempt,
            role: profile.role,
            throughput: profile.throughput,
            ledger: SwapLedger::new(),
            handoff_ledger: HandoffLedger::new(),
            tally: PreemptTally::default(),
            handoff_tally: HandoffTally::default(),
            outbound: Vec::new(),
            inbound: Vec::new(),
            step_tally: StepTally::default(),
            prefix_tally: PrefixTally::default(),
            pending: VecDeque::new(),
            active: Vec::new(),
            suspended: Vec::new(),
            records: Vec::new(),
            now: 0.0,
            busy_cycles: 0.0,
            energy_pj: 0.0,
            decode_invocations: 0,
            decode_streams: 0,
            conc_log: Vec::new(),
            dispatched: 0,
            device: 0,
            log: None,
        }
    }

    /// This device's step-cost model (its own for a heterogeneous
    /// profile, the simulator's shared one otherwise).
    fn cost(&self) -> &StepCostModel<'a> {
        match &self.cost {
            DeviceCost::Shared(cost) => cost,
            DeviceCost::Owned(cost) => cost,
        }
    }

    /// The profile's relative throughput weight (the router's
    /// weighted-JSQ denominator).
    pub(crate) fn throughput(&self) -> f64 {
        self.throughput
    }

    /// Appends one event to a traced run's log (no-op when untraced, so
    /// the hook sites cost nothing on the ordinary paths).
    fn record(&mut self, ev: TraceEvent) {
        if let Some(log) = &mut self.log {
            log.push(ev);
        }
    }

    /// Hands this device a dispatched request, keeping the local queue
    /// arrival-sorted (dispatch order is global arrival order, so this is
    /// a tail insert except around closed-loop releases).
    pub(crate) fn enqueue(&mut self, req: Request) {
        self.dispatched += 1;
        let pos = self
            .pending
            .iter()
            .rposition(|r| r.arrival_cycle <= req.arrival_cycle)
            .map_or(0, |i| i + 1);
        self.pending.insert(pos, req);
    }

    pub(crate) fn has_active(&self) -> bool {
        !self.active.is_empty()
    }

    /// Whether this device still holds undone work of any kind.
    pub(crate) fn is_drained(&self) -> bool {
        self.active.is_empty()
            && self.suspended.is_empty()
            && self.pending.is_empty()
            && self.outbound.is_empty()
            && self.inbound.is_empty()
            && self.handoff_ledger.is_empty()
    }

    /// Drains the finished prefills awaiting stage-2 routing (called by
    /// the driver inside its dispatch fixpoint, in device-index order —
    /// the routing order is part of the deterministic replay contract).
    pub(crate) fn take_outbound(&mut self) -> Vec<HandoffOut> {
        std::mem::take(&mut self.outbound)
    }

    /// Host-link cycles one outbound handoff of `bytes` occupies on
    /// *this* (source) device's link.
    pub(crate) fn handoff_transfer_cycles(&self, bytes: u64) -> f64 {
        if bytes == 0 {
            0.0
        } else {
            self.preempt.transfer_cycles(bytes)
        }
    }

    /// Books one outbound handoff on the source device's tally.
    pub(crate) fn note_handoff_out(&mut self, bytes: u64, link_cycles: f64) {
        self.handoff_tally.out += 1;
        self.handoff_tally.bytes_out += bytes;
        self.handoff_tally.link_cycles += link_cycles;
    }

    /// Accepts a routed handoff: the ledger takes custody of the bytes
    /// and the request queues for admission once the transfer lands at
    /// `arrival_cycle`.
    pub(crate) fn receive_handoff(&mut self, h: HandoffOut, arrival_cycle: f64) {
        self.handoff_ledger.handoff_out(h.req.id, h.bytes);
        let entry = PendingHandoff {
            req: h.req,
            admitted_cycle: h.admitted_cycle,
            preemptions: h.preemptions,
            prefill_done: h.prefill_done,
            tokens: h.tokens,
            first_token_cycle: h.first_token_cycle,
            arrival_cycle,
        };
        // Arrival-sorted like `pending`; ids break exact-cycle ties so
        // insertion order never matters.
        let pos = self
            .inbound
            .iter()
            .rposition(|p| (p.arrival_cycle, p.req.id) <= (entry.arrival_cycle, entry.req.id))
            .map_or(0, |i| i + 1);
        self.inbound.insert(pos, entry);
    }

    /// Remaining work queued on this device, in tokens (pending prompts
    /// and decodes, plus unprefilled and undecoded tokens of admitted and
    /// suspended requests) — the join-shortest-queue dispatch metric.
    pub(crate) fn queued_tokens(&self) -> u64 {
        let pending: usize = self
            .pending
            .iter()
            .map(|r| r.prompt_len + r.decode_len)
            .sum();
        let active: usize = self
            .active
            .iter()
            .map(|f| (f.prefill_target - f.prefill_done) + (f.req.decode_len - f.tokens))
            .sum();
        let suspended: usize = self
            .suspended
            .iter()
            .map(|s| (s.prefill_target - s.prefill_done) + (s.req.decode_len - s.tokens))
            .sum();
        let inbound: usize = self
            .inbound
            .iter()
            .map(|h| h.req.decode_len - h.tokens)
            .sum();
        (pending + active + suspended + inbound) as u64
    }

    /// Runs admission to a fixpoint: resumable victims and arrived queue
    /// entries are admitted best-first until the best candidate blocks.
    /// An idle device fast-forwards its clock to the next timed arrival.
    /// Returns the number of requests dropped (peak residency can never
    /// fit) — the driver releases one closed-loop slot per drop.
    pub(crate) fn admit(&mut self) -> usize {
        let mut drops = 0;
        loop {
            self.admit_pass(&mut drops);
            if self.extract_finished_prefills() > 0 {
                // A fully-prefix-covered admission can complete its
                // prefill without a single step; its handoff frees pool
                // bytes that may unblock further admission.
                continue;
            }
            if self.active.is_empty() {
                // Admission into an idle pool cannot block, so nothing is
                // suspended either.
                debug_assert!(
                    self.suspended.is_empty(),
                    "suspended work on an idle device"
                );
                let next = self
                    .pending
                    .iter()
                    .map(|r| r.arrival_cycle)
                    .filter(|a| a.is_finite())
                    .chain(self.inbound.iter().map(|h| h.arrival_cycle))
                    .min_by(f64::total_cmp);
                if let Some(arrival) = next {
                    if arrival > self.now {
                        self.now = arrival;
                        // The gap holds no admitted work (asserted above),
                        // so it is excluded from the occupancy mean
                        // entirely rather than diluting it.
                        self.pool.skip_idle(self.now);
                        continue;
                    }
                }
            }
            break;
        }
        drops
    }

    /// Moves every first-tokened request with remaining decode work off a
    /// [`DeviceRole::Prefill`] device into the outbound handoff buffer:
    /// the prefill device finishes the prompt *and generates token 1*
    /// (the DistServe cut — TTFT never crosses the link), then the decode
    /// continuation leaves. Its KV leaves this pool (the shared-prefix
    /// share stays resident as a warm line, its reference dropped) and
    /// the request's bytes exist only in the buffered [`HandoffOut`]
    /// until the driver routes it. Requests whose decode length is 1
    /// complete on the prefill device and never hand off. Returns the
    /// number extracted; a no-op on every other role.
    fn extract_finished_prefills(&mut self) -> usize {
        if self.role != DeviceRole::Prefill {
            return 0;
        }
        let mut extracted = 0;
        let mut i = 0;
        while i < self.active.len() {
            let ready = {
                let f = &self.active[i];
                f.prefilled() && f.req.decode_len > 0 && f.tokens >= 1
            };
            if !ready {
                i += 1;
                continue;
            }
            let f = self.active.remove(i);
            let freed = self.pool.release(f.req.id);
            let bytes = freed.resident_bytes + f.prefix_bytes;
            if f.prefix_bytes > 0 {
                self.pool
                    .unref_prefix(f.req.prefix.expect("prefix bytes imply a prefix").id);
            }
            self.conc_log.push((self.now, -1));
            self.outbound.push(HandoffOut {
                prefill_done: f.prefill_target,
                tokens: f.tokens,
                first_token_cycle: f.first_token_cycle,
                bytes,
                ready_cycle: self.now,
                req: f.req,
                admitted_cycle: f.admitted_cycle,
                preemptions: f.preemptions,
            });
            extracted += 1;
        }
        extracted
    }

    /// One admission sweep at the current clock.
    fn admit_pass(&mut self, drops: &mut usize) {
        /// Which queue the sweep's best candidate came from.
        enum Source {
            Suspended,
            Pending,
            Handoff,
        }
        let keep = self.cost().template().attention_keep;
        let model = self.cost().template().model.clone();
        loop {
            let best_susp = self
                .suspended
                .iter()
                .enumerate()
                .map(|(i, s)| (i, (s.req.priority, s.arrival_key(), s.req.id)))
                .reduce(|a, b| if admits_before(b.1, a.1) { b } else { a });
            let best_pend = self
                .pending
                .iter()
                .enumerate()
                .take_while(|(_, r)| r.arrival_cycle <= self.now)
                .map(|(i, r)| (i, (r.priority, r.arrival_cycle, r.id)))
                .reduce(|a, b| if admits_before(b.1, a.1) { b } else { a });
            // A landed handoff competes like any other admission
            // candidate, keyed by its link-arrival instant.
            let best_hand = self
                .inbound
                .iter()
                .enumerate()
                .filter(|(_, h)| h.arrival_cycle <= self.now)
                .map(|(i, h)| (i, (h.req.priority, h.arrival_cycle, h.req.id)))
                .reduce(|a, b| if admits_before(b.1, a.1) { b } else { a });
            // Ids are unique, so keys never tie exactly; prefer whichever
            // source is strictly ahead in admission order.
            let best = [
                best_susp.map(|c| (Source::Suspended, c)),
                best_pend.map(|c| (Source::Pending, c)),
                best_hand.map(|c| (Source::Handoff, c)),
            ]
            .into_iter()
            .flatten()
            .reduce(|a, b| if admits_before(b.1 .1, a.1 .1) { b } else { a });
            let Some((source, _)) = best else { break };
            if matches!(source, Source::Handoff) {
                let (idx, (prio, _, id)) = best_hand.expect("handoff candidate");
                let full_peak =
                    request_kv_bytes(&model, self.inbound[idx].req.final_context(), keep);
                if !self.pool.can_ever_fit(full_peak) {
                    // The decode pool can never hold this request's peak
                    // (the prefill pool could): the handoff is dropped on
                    // arrival, its transferred bytes discarded.
                    let h = self.inbound.remove(idx);
                    self.handoff_tally.in_count += 1;
                    self.handoff_tally.bytes_in += self.handoff_ledger.handoff_in(id);
                    // The source already delivered token 1; the drop
                    // record keeps that truth (its TTFT stands, only the
                    // continuation is lost).
                    self.records.push(RequestRecord {
                        state: RequestState::Dropped,
                        admitted_cycle: h.admitted_cycle,
                        first_token_cycle: h.first_token_cycle,
                        completed_cycle: self.now,
                        tokens: h.tokens,
                        preemptions: h.preemptions,
                        request: h.req,
                    });
                    *drops += 1;
                    self.record(TraceEvent::Drop {
                        device: self.device,
                        cycle: self.now,
                        id,
                    });
                    continue;
                }
                if !self.try_admit(id, full_peak, prio, None) {
                    break;
                }
                let h = self.inbound.remove(idx);
                // The ledger hands the transferred bytes over: they
                // become resident KV under the fresh reservation (capped
                // by it — the pools may disagree on the keep ratio).
                let bytes = self.handoff_ledger.handoff_in(id);
                self.handoff_tally.in_count += 1;
                self.handoff_tally.bytes_in += bytes;
                self.pool.grow_resident(id, bytes.min(full_peak));
                self.active.push(InFlight {
                    prefill_done: h.prefill_done,
                    prefill_target: h.prefill_done,
                    replay_tokens: 0,
                    prefix_bytes: 0,
                    req: h.req,
                    admitted_cycle: h.admitted_cycle,
                    tokens: h.tokens,
                    first_token_cycle: h.first_token_cycle,
                    preemptions: h.preemptions,
                });
                self.conc_log.push((self.now, 1));
                self.record(TraceEvent::Admit {
                    device: self.device,
                    cycle: self.now,
                    id,
                    resumed: true,
                    reused_prefix_tokens: 0,
                    queue_depth: self.pending.len() as u32,
                });
                continue;
            }
            let resume = matches!(source, Source::Suspended);
            if resume {
                let (idx, (prio, _, id)) = best_susp.expect("resume candidate");
                let full_peak =
                    request_kv_bytes(&model, self.suspended[idx].req.final_context(), keep);
                if self.suspended[idx].swapped_bytes > 0 {
                    // Swap resume. The cursor reuse holds only if the
                    // victim's own cursor already sat past its prefix at
                    // eviction (its swapped KV is then suffix-only) and
                    // the prefix entry survived reclamation.
                    let s = &self.suspended[idx];
                    let reuse = resident_reuse(&self.pool, s.req.prefix)
                        .filter(|&(_, tokens, _)| s.prefill_done >= tokens);
                    let had_prefix = s
                        .req
                        .prefix
                        .is_some_and(|p| p.tokens > 0 && s.prefill_done >= p.tokens);
                    let (pbytes, keep_id) = match reuse {
                        Some((pid, _, bytes)) => (bytes, Some(pid)),
                        None => (0, None),
                    };
                    if !self.try_admit(id, full_peak - pbytes, prio, keep_id) {
                        break;
                    }
                    let s = self.suspended.remove(idx);
                    // Swap-in: restore the victim's KV from host memory,
                    // stalling the device for the transfer.
                    let cycles = self.preempt.transfer_cycles(s.swapped_bytes);
                    self.now += cycles;
                    self.pool.advance_clock(self.now);
                    self.tally.swap_cycles += cycles;
                    self.tally.swap_in_bytes += self.ledger.swap_in(s.req.id);
                    self.pool.grow_resident(s.req.id, s.swapped_bytes);
                    // One resume state per case; only the cursor fields
                    // differ between them.
                    let (prefill_done, prefill_target, replay_tokens, prefix_bytes) =
                        if let Some(pid) = keep_id {
                            // The prefix KV survives in the shared ledger:
                            // the cursor stands, only the suffix was moved.
                            self.pool.ref_prefix(pid);
                            self.prefix_tally.reused_tokens +=
                                s.req.prefix.expect("reuse implies a prefix").tokens as u64;
                            (s.prefill_done, s.prefill_target, s.replay_tokens, pbytes)
                        } else if had_prefix {
                            // The victim's cursor leaned on a prefix that
                            // was reclaimed while it was suspended: the
                            // restored suffix KV is kept, but the missing
                            // prefix region must be re-prefilled
                            // (attributed as replay — the reclamation
                            // discarded computed KV).
                            let target = if s.prefill_done >= s.prefill_target {
                                s.req.prefix.expect("had_prefix").tokens
                            } else {
                                s.prefill_target
                            };
                            (0, target, s.prefill_done.min(target), 0)
                        } else {
                            // No prefix involvement: the cursor survives
                            // because the swapped KV covers everything done.
                            (s.prefill_done, s.prefill_target, s.replay_tokens, 0)
                        };
                    let reused_prefix_tokens = if keep_id.is_some() {
                        s.req.prefix.map_or(0, |p| p.tokens as u32)
                    } else {
                        0
                    };
                    self.active.push(InFlight {
                        prefill_done,
                        prefill_target,
                        replay_tokens,
                        prefix_bytes,
                        req: s.req,
                        admitted_cycle: s.admitted_cycle,
                        tokens: s.tokens,
                        first_token_cycle: s.first_token_cycle,
                        preemptions: s.preemptions,
                    });
                    self.conc_log.push((self.now, 1));
                    self.record(TraceEvent::Admit {
                        device: self.device,
                        cycle: self.now,
                        id,
                        resumed: true,
                        reused_prefix_tokens,
                        queue_depth: self.pending.len() as u32,
                    });
                } else {
                    // Drop-and-recompute resume: the prefill restarts over
                    // prompt + generated tokens. Replay covers exactly the
                    // work the eviction discarded: everything when the
                    // prefill had completed, otherwise only the chunks it
                    // had finished (or the replay region it was already
                    // re-running). A still-resident prefix lets the
                    // restart skip the shared region entirely.
                    let s = &self.suspended[idx];
                    let target = s.req.prompt_len + s.tokens;
                    let replay = if s.prefill_done >= s.prefill_target {
                        target
                    } else {
                        s.replay_tokens.max(s.prefill_done).min(target)
                    };
                    let remaining_decode = s.req.decode_len - s.tokens;
                    let reuse = resident_reuse(&self.pool, s.req.prefix);
                    let (start, pbytes, keep_id) = match reuse {
                        Some((pid, tokens, bytes)) => (
                            reuse_start(tokens, target, remaining_decode),
                            bytes,
                            Some(pid),
                        ),
                        None => (0, 0, None),
                    };
                    if !self.try_admit(id, full_peak - pbytes, prio, keep_id) {
                        break;
                    }
                    let s = self.suspended.remove(idx);
                    if let Some(pid) = keep_id {
                        self.pool.ref_prefix(pid);
                        self.prefix_tally.reused_tokens += start as u64;
                    }
                    self.active.push(InFlight {
                        prefill_done: start,
                        prefill_target: target,
                        replay_tokens: replay,
                        prefix_bytes: pbytes,
                        req: s.req,
                        admitted_cycle: s.admitted_cycle,
                        tokens: s.tokens,
                        first_token_cycle: s.first_token_cycle,
                        preemptions: s.preemptions,
                    });
                    self.conc_log.push((self.now, 1));
                    self.record(TraceEvent::Admit {
                        device: self.device,
                        cycle: self.now,
                        id,
                        resumed: true,
                        reused_prefix_tokens: start as u32,
                        queue_depth: self.pending.len() as u32,
                    });
                }
            } else {
                let (idx, (prio, _, id)) = best_pend.expect("pending candidate");
                let full_peak = request_kv_bytes(&model, self.pending[idx].final_context(), keep);
                // The drop decision uses the *full* peak: a request must
                // be servable even when its prefix is not resident, or a
                // later prefix reclamation could leave an admitted-only-
                // by-reuse victim unable to ever resume.
                if !self.pool.can_ever_fit(full_peak) {
                    let req = self.pending.remove(idx).expect("index valid");
                    let dropped = req.id;
                    self.records.push(RequestRecord {
                        state: RequestState::Dropped,
                        admitted_cycle: self.now,
                        first_token_cycle: self.now,
                        completed_cycle: self.now,
                        tokens: 0,
                        preemptions: 0,
                        request: req,
                    });
                    *drops += 1;
                    self.record(TraceEvent::Drop {
                        device: self.device,
                        cycle: self.now,
                        id: dropped,
                    });
                    continue;
                }
                // Prefix reuse: a resident prefix lets the prompt reserve
                // only its unshared suffix and start the prefill past the
                // shared region.
                let req = &self.pending[idx];
                let reuse = resident_reuse(&self.pool, req.prefix);
                let remaining_decode = req.decode_len;
                let target = req.prompt_len;
                let declared = req.prefix.is_some_and(|p| p.tokens > 0);
                let (start, pbytes, keep_id) = match reuse {
                    Some((pid, tokens, bytes)) => (
                        reuse_start(tokens, target, remaining_decode),
                        bytes,
                        Some(pid),
                    ),
                    None => (0, 0, None),
                };
                if !self.try_admit(id, full_peak - pbytes, prio, keep_id) {
                    break;
                }
                let req = self.pending.remove(idx).expect("index valid");
                if let Some(pid) = keep_id {
                    self.pool.ref_prefix(pid);
                    self.prefix_tally.hits += 1;
                    self.prefix_tally.reused_tokens += start as u64;
                } else if declared {
                    self.prefix_tally.misses += 1;
                }
                self.active.push(InFlight {
                    req,
                    admitted_cycle: self.now,
                    prefill_done: start,
                    prefill_target: target,
                    replay_tokens: 0,
                    prefix_bytes: pbytes,
                    tokens: 0,
                    first_token_cycle: 0.0,
                    preemptions: 0,
                });
                self.conc_log.push((self.now, 1));
                self.record(TraceEvent::Admit {
                    device: self.device,
                    cycle: self.now,
                    id,
                    resumed: false,
                    reused_prefix_tokens: start as u32,
                    queue_depth: self.pending.len() as u32,
                });
            }
        }
    }

    /// Reserves `peak` bytes for candidate `id`, evicting strictly
    /// lower-priority victims if the configured policy allows and then —
    /// last — reclaiming unreferenced resident prefixes, when the
    /// combination would actually make room. `keep_prefix` names the
    /// prefix the candidate is about to reuse; it is spared from
    /// reclamation. Returns whether the reservation succeeded.
    ///
    /// Victims go before warm prefixes deliberately: a victim's KV serves
    /// only itself (and preemption exists to reorder exactly that work),
    /// while a resident prefix is shared state that keeps paying off
    /// across future arrivals — the serving-granularity analogue of the
    /// repetition reuse MCBP bets on.
    fn try_admit(
        &mut self,
        id: RequestId,
        peak: u64,
        priority: Priority,
        keep_prefix: Option<PrefixId>,
    ) -> bool {
        if self.pool.try_reserve(id, peak) {
            return true;
        }
        // Feasibility first: evicting every allowed victim and reclaiming
        // every warm prefix must make room, otherwise don't thrash the
        // pool for nothing.
        let evictable: u64 = if self.preempt.policy == EvictionPolicy::None {
            0
        } else {
            self.active
                .iter()
                .filter(|f| f.req.priority < priority)
                .map(|f| {
                    self.pool
                        .reservation(f.req.id)
                        .expect("active request holds a reservation")
                        .reserved_bytes
                })
                .sum()
        };
        let reclaimable = self.pool.reclaimable_prefix_bytes(keep_prefix);
        let free = self.pool.budget_bytes() - self.pool.reserved_bytes();
        if free + evictable + reclaimable < peak {
            return false;
        }
        while !self.pool.try_reserve(id, peak) {
            // Victim order: lowest class first; within it the youngest
            // admission (least sunk progress), ties broken by highest id.
            let victim = if self.preempt.policy == EvictionPolicy::None {
                None
            } else {
                self.active
                    .iter()
                    .enumerate()
                    .filter(|(_, f)| f.req.priority < priority)
                    .map(|(i, f)| (i, (f.req.priority, f.admitted_cycle, f.req.id)))
                    .reduce(|a, b| {
                        let later = b.1 .0 < a.1 .0
                            || (b.1 .0 == a.1 .0
                                && (b.1 .1 > a.1 .1 || (b.1 .1 == a.1 .1 && b.1 .2 > a.1 .2)));
                        if later {
                            b
                        } else {
                            a
                        }
                    })
                    .map(|(i, _)| i)
            };
            let Some(victim) = victim else {
                // Victims exhausted (or preemption disabled): reclaim one
                // unreferenced resident prefix — feasibility guaranteed
                // there is one to take.
                let (_, bytes) = self
                    .pool
                    .reclaim_unreferenced_prefix(keep_prefix)
                    .expect("feasibility guaranteed reclaimable bytes");
                self.prefix_tally.reclaimed += 1;
                self.prefix_tally.reclaimed_bytes += bytes;
                continue;
            };
            let f = self.active.remove(victim);
            let freed = self.pool.release(f.req.id);
            if f.prefix_bytes > 0 {
                // The victim's reference on its shared prefix drops with
                // it; the entry itself stays resident (a warm cache line)
                // and the resume path re-evaluates reuse against it.
                self.pool
                    .unref_prefix(f.req.prefix.expect("prefix bytes imply a prefix").id);
            }
            self.tally.preemptions += 1;
            let swapped_bytes = match self.preempt.policy {
                EvictionPolicy::None => unreachable!("victims require a policy"),
                EvictionPolicy::DropRecompute => 0,
                EvictionPolicy::Swap => {
                    if freed.resident_bytes > 0 {
                        // Swap-out: spill the victim's KV to host memory,
                        // stalling the device for the transfer.
                        let cycles = self.preempt.transfer_cycles(freed.resident_bytes);
                        self.now += cycles;
                        self.pool.advance_clock(self.now);
                        self.tally.swap_cycles += cycles;
                        self.tally.swap_out_bytes += freed.resident_bytes;
                        self.ledger.swap_out(f.req.id, freed.resident_bytes);
                    }
                    freed.resident_bytes
                }
            };
            let victim_id = f.req.id;
            self.suspended.push(Suspended {
                prefill_done: f.prefill_done,
                prefill_target: f.prefill_target,
                replay_tokens: f.replay_tokens,
                swapped_bytes,
                req: f.req,
                admitted_cycle: f.admitted_cycle,
                tokens: f.tokens,
                first_token_cycle: f.first_token_cycle,
                preemptions: f.preemptions + 1,
            });
            self.conc_log.push((self.now, -1));
            self.record(TraceEvent::Preempt {
                device: self.device,
                cycle: self.now,
                victim: victim_id,
                swapped_bytes,
            });
        }
        true
    }

    /// Plans and executes one batched step — pure prefill, pure decode,
    /// or a budgeted **mixed step** carrying a prefill chunk plus
    /// piggybacked decode streams — retiring completions. Returns the
    /// number of requests that completed — the driver releases one
    /// closed-loop slot per completion.
    ///
    /// In a mixed step the chunk members' KV residency grows to their new
    /// cursor and the piggybacked members' decode-token accounting (token
    /// counts, first-token stamps, per-token KV growth) lands in the same
    /// step; the step is costed as chunk cost plus incremental
    /// piggybacked-decode cost ([`StepCostModel::mixed_step_cost`]).
    ///
    /// # Panics
    ///
    /// Panics if the scheduler returns an idle plan or selects no live
    /// request while work is visible, or schedules more tokens than
    /// [`ServeConfig::step_token_budget`] allows (contract violations —
    /// failing loudly beats silently losing in-flight requests).
    pub(crate) fn step(&mut self, scheduler: &mut dyn Scheduler) -> usize {
        let step_start = self.now;
        let keep = self.cost().template().attention_keep;
        let model = self.cost().template().model.clone();
        let waiting: Vec<SchedEntry> = self
            .active
            .iter()
            .filter(|f| !f.prefilled())
            .map(|f| SchedEntry {
                id: f.req.id,
                len: f.prefill_target,
                done: f.prefill_done,
                generated: f.tokens,
                priority: f.req.priority,
            })
            .collect();
        let decoding: Vec<SchedEntry> = self
            .active
            .iter()
            .filter(|f| f.prefilled() && f.tokens < f.req.decode_len)
            .map(|f| SchedEntry {
                id: f.req.id,
                len: f.context(),
                done: f.context(),
                generated: f.tokens,
                priority: f.req.priority,
            })
            .collect();
        let view = SchedView {
            waiting_prefill: &waiting,
            decoding: &decoding,
            max_batch: self.sim.cfg.max_batch,
            prefill_chunk: self.sim.cfg.prefill_chunk,
            step_token_budget: self.sim.cfg.step_token_budget,
        };
        let plan = scheduler.plan(&view);
        assert!(
            !plan.is_idle(),
            "scheduler `{}` returned an idle plan with {} prompt(s) waiting and {} stream(s) decoding",
            scheduler.name(),
            waiting.len(),
            decoding.len()
        );
        // Prefill and decode members share the coalescing width.
        let prefill_ids = clamp_ids(&plan.prefill, &waiting, self.sim.cfg.max_batch);
        let decode_ids = clamp_ids(
            &plan.decode,
            &decoding,
            self.sim.cfg.max_batch - prefill_ids.len(),
        );
        assert!(
            !(prefill_ids.is_empty() && decode_ids.is_empty()),
            "scheduler `{}` plan selected no live request",
            scheduler.name()
        );

        let chunk = self.sim.cfg.prefill_chunk.unwrap_or(usize::MAX);
        // Per-request chunk spans. The schedulers batch matching
        // (target, cursor) pairs so spans are uniform; a custom
        // scheduler mixing cursors is costed by its heaviest span.
        let spans: Vec<(RequestId, usize, usize, usize)> = prefill_ids
            .iter()
            .map(|id| {
                let f = lookup(&self.active, *id);
                let upto = f.prefill_target.min(f.prefill_done.saturating_add(chunk));
                (*id, f.prefill_done, upto, f.replay_tokens)
            })
            .collect();
        // Budget contract: the executed step never exceeds the shared
        // token budget (chunk tokens + one per decode member).
        if let Some(budget) = self.sim.cfg.step_token_budget {
            let tokens = spans.iter().map(|&(_, d, u, _)| u - d).sum::<usize>() + decode_ids.len();
            assert!(
                tokens <= budget,
                "scheduler `{}` scheduled {tokens} tokens over the {budget}-token step budget",
                scheduler.name()
            );
            self.step_tally.utilization_sum += tokens as f64 / budget as f64;
        }

        // ---- cost the invocation (chunk + piggybacked decodes) ----
        let chunk_cost = (!spans.is_empty()).then(|| {
            let (_, done, upto, _) = spans
                .iter()
                .copied()
                .max_by_key(|&(_, done, upto, _)| (upto - done, upto))
                .expect("non-empty");
            self.sim
                .fleet_scaled(self.cost().prefill_chunk_cost(done, upto, spans.len()))
        });
        let decode_cost = (!decode_ids.is_empty()).then(|| {
            let mean_ctx = (decode_ids
                .iter()
                .map(|id| lookup(&self.active, *id).context())
                .sum::<usize>() as f64
                / decode_ids.len() as f64)
                .round() as usize;
            // Piggybacked decodes ride the chunk's weight stream and pay
            // only their incremental cost; a pure decode step pays the
            // full invocation cost including the stream.
            let raw = if spans.is_empty() {
                self.cost().decode_cost(mean_ctx.max(1), decode_ids.len())
            } else {
                self.cost()
                    .piggyback_decode_cost(mean_ctx.max(1), decode_ids.len())
            };
            self.sim.fleet_scaled(raw)
        });
        let step_cycles =
            chunk_cost.map_or(0.0, |c| c.cycles) + decode_cost.map_or(0.0, |c| c.cycles);
        self.now += step_cycles;
        self.busy_cycles += step_cycles;
        // Integrate pre-step residency over the step before the step's
        // own growth lands, so the occupancy mean is not biased upward
        // by end-of-step byte arrivals.
        self.pool.advance_clock(self.now);
        self.energy_pj +=
            chunk_cost.map_or(0.0, |c| c.energy_pj) + decode_cost.map_or(0.0, |c| c.energy_pj);
        self.step_tally.steps += 1;
        match (chunk_cost.is_some(), decode_cost.is_some()) {
            (true, true) => self.step_tally.mixed_steps += 1,
            (true, false) => self.step_tally.prefill_steps += 1,
            (false, true) => self.step_tally.decode_steps += 1,
            (false, false) => unreachable!("empty plans are rejected above"),
        }

        // ---- apply the chunk members' cursor and KV growth ----
        if let Some(cost) = chunk_cost {
            // Attribute the replayed share of the chunk (not of the
            // piggybacked decodes) to recompute overhead
            // (drop-and-recompute's resume bill): the tokens of each span
            // overlapping its replay region.
            let taken: usize = spans.iter().map(|&(_, d, u, _)| u - d).sum();
            let replayed: usize = spans
                .iter()
                .map(|&(_, d, u, rep)| u.min(rep).saturating_sub(d))
                .sum();
            self.tally.recompute_cycles += cost.cycles * replayed as f64 / taken as f64;
            for &(id, _, upto, _) in &spans {
                let f = lookup_mut(&mut self.active, id);
                f.prefill_done = upto;
                if f.prefilled() && f.req.decode_len == 0 && f.tokens == 0 {
                    f.first_token_cycle = self.now; // prompt-only request
                }
                // Residency grows per chunk: the KV bytes of the
                // prefilled prefix — minus any share the shared-prefix
                // ledger already holds — never past the peak reservation.
                let prefix_bytes = f.prefix_bytes;
                let reserved = self
                    .pool
                    .reservation(id)
                    .expect("prefilling request holds a reservation");
                let target = request_kv_bytes(&model, upto, keep)
                    .saturating_sub(prefix_bytes)
                    .min(reserved.reserved_bytes);
                self.pool
                    .grow_resident(id, target.saturating_sub(reserved.resident_bytes));
                // Crossing the declared prefix boundary materializes the
                // shared prefix: its KV bytes move out of this request's
                // reservation into the pool's refcounted prefix ledger
                // (or, if another request got there first, the duplicate
                // copy is shed back to the pool).
                let f = lookup_mut(&mut self.active, id);
                if let Some(p) = f.req.prefix {
                    if p.tokens > 0 && f.prefix_bytes == 0 && upto >= p.tokens {
                        let bytes = request_kv_bytes(&model, p.tokens, keep);
                        f.prefix_bytes = self.pool.promote_prefix(id, p.id, p.tokens, bytes);
                    }
                }
            }
        }

        // ---- apply the decode members' token accounting ----
        if !decode_ids.is_empty() {
            self.decode_invocations += 1;
            self.decode_streams += decode_ids.len() as u64;
            for id in &decode_ids {
                let f = lookup_mut(&mut self.active, *id);
                f.tokens += 1;
                if f.tokens == 1 {
                    f.first_token_cycle = self.now;
                }
                let context = f.context();
                let prefix_bytes = f.prefix_bytes;
                let reserved = self
                    .pool
                    .reservation(*id)
                    .expect("decoding request holds a reservation");
                let target = request_kv_bytes(&model, context, keep)
                    .saturating_sub(prefix_bytes)
                    .min(reserved.reserved_bytes);
                self.pool
                    .grow_resident(*id, target.saturating_sub(reserved.resident_bytes));
            }
        }

        // ---- retire completions ----
        let mut completions = 0;
        let mut i = 0;
        while i < self.active.len() {
            let done = {
                let f = &self.active[i];
                f.prefilled() && f.tokens >= f.req.decode_len
            };
            if !done {
                i += 1;
                continue;
            }
            let f = self.active.remove(i);
            self.pool.release(f.req.id);
            if f.prefix_bytes > 0 {
                // Completion drops the reference; the prefix entry stays
                // resident as a warm cache line for future arrivals.
                self.pool
                    .unref_prefix(f.req.prefix.expect("prefix bytes imply a prefix").id);
            }
            self.records.push(RequestRecord {
                state: RequestState::Completed,
                admitted_cycle: f.admitted_cycle,
                first_token_cycle: f.first_token_cycle,
                completed_cycle: self.now,
                tokens: f.tokens,
                preemptions: f.preemptions,
                request: f.req,
            });
            self.conc_log.push((self.now, -1));
            completions += 1;
        }
        // ---- extract finished prefills for decode-pool handoff ----
        // (After completions so prompt-only requests retire locally; the
        // Step event below then reflects the post-handoff device state.)
        self.extract_finished_prefills();
        if self.log.is_some() {
            let prefill_tokens: usize = spans.iter().map(|&(_, d, u, _)| u - d).sum();
            self.record(TraceEvent::Step {
                device: self.device,
                start_cycle: step_start,
                end_cycle: self.now,
                prefill_streams: spans.len() as u32,
                decode_streams: decode_ids.len() as u32,
                prefill_tokens: prefill_tokens as u32,
                queue_depth: self.pending.len() as u32,
                active_streams: self.active.len() as u32,
                pool_reserved_bytes: self.pool.reserved_bytes(),
                completions: completions as u32,
            });
        }
        completions
    }

    /// Drives this device alone up to `horizon`: steps while it holds
    /// active work and its clock sits strictly before the horizon,
    /// re-running local admission after every step — exactly the
    /// subsequence of the sequential drive loop that touches this device
    /// between dispatch points, which is what makes the parallel fleet
    /// phase bit-exact (see the `crate::dispatch` module docs). The
    /// caller guarantees no cross-device coupling is live before
    /// `horizon`: no dispatch is due, no closed-loop slot can release,
    /// and no device can produce a handoff (every [`DeviceRole::Prefill`]
    /// device is quiescent — the driver serializes whenever one is
    /// busy). Inbound handoffs already routed to this device are fine:
    /// their arrival instant is fixed, so admitting them is purely local
    /// work.
    pub(crate) fn run_until(&mut self, horizon: f64, scheduler: &mut dyn Scheduler) {
        while self.has_active() && self.now < horizon {
            self.step(scheduler);
            self.admit();
        }
    }

    /// Total device-busy cycles: executed steps plus swap stalls.
    pub(crate) fn busy_cycles(&self) -> f64 {
        self.busy_cycles + self.tally.swap_cycles
    }

    /// This device's KV-pool statistics (admission stall over its own
    /// completed records).
    pub(crate) fn pool_report(&self) -> PoolReport {
        let stall_cycles: f64 = self
            .records
            .iter()
            .filter(|r| r.completed())
            .map(RequestRecord::admission_stall_cycles)
            .sum();
        PoolReport {
            budget_bytes: self.pool.budget_bytes(),
            peak_resident_bytes: self.pool.peak_resident_bytes(),
            peak_reserved_bytes: self.pool.peak_reserved_bytes(),
            mean_resident_bytes: self.pool.mean_resident_bytes(),
            busy_span_seconds: self.pool.busy_span_cycles() / crate::CLOCK_HZ,
            admission_stall_seconds: stall_cycles / crate::CLOCK_HZ,
        }
    }

    /// This device's per-step composition statistics.
    pub(crate) fn step_report(&self) -> StepReport {
        StepReport {
            steps: self.step_tally.steps,
            prefill_steps: self.step_tally.prefill_steps,
            decode_steps: self.step_tally.decode_steps,
            mixed_steps: self.step_tally.mixed_steps,
            mean_budget_utilization: if self.step_tally.steps == 0 {
                0.0
            } else {
                self.step_tally.utilization_sum / self.step_tally.steps as f64
            },
        }
    }

    /// This device's prefix-cache statistics.
    pub(crate) fn prefix_report(&self) -> PrefixReport {
        PrefixReport {
            hits: self.prefix_tally.hits,
            misses: self.prefix_tally.misses,
            reused_tokens: self.prefix_tally.reused_tokens,
            reclaimed: self.prefix_tally.reclaimed,
            reclaimed_bytes: self.prefix_tally.reclaimed_bytes,
        }
    }

    /// This device's prefill→decode handoff statistics (outbound lanes
    /// attributed to the source device, inbound — including the ledger's
    /// in-flight peak — to the destination).
    pub(crate) fn handoff_report(&self) -> HandoffReport {
        HandoffReport {
            handoffs_out: self.handoff_tally.out,
            handoffs_in: self.handoff_tally.in_count,
            bytes_out: self.handoff_tally.bytes_out,
            bytes_in: self.handoff_tally.bytes_in,
            link_seconds: self.handoff_tally.link_cycles / crate::CLOCK_HZ,
            peak_in_flight_bytes: self.handoff_ledger.peak_in_flight_bytes(),
        }
    }

    /// This device's preemption statistics.
    pub(crate) fn preempt_report(&self) -> PreemptReport {
        PreemptReport {
            preemptions: self.tally.preemptions,
            swap_out_bytes: self.tally.swap_out_bytes,
            swap_in_bytes: self.tally.swap_in_bytes,
            swap_seconds: self.tally.swap_cycles / crate::CLOCK_HZ,
            recompute_seconds: self.tally.recompute_cycles / crate::CLOCK_HZ,
            peak_swap_held_bytes: self.ledger.peak_held_bytes(),
        }
    }
}

/// Restricts a plan to ids actually present in the view, preserving plan
/// order, with duplicates removed, capped at the coalescing width. A
/// custom scheduler naming the same stream twice must advance it once,
/// not twice.
fn clamp_ids(ids: &[RequestId], view: &[SchedEntry], max_batch: usize) -> Vec<RequestId> {
    let mut seen = Vec::with_capacity(ids.len().min(max_batch));
    for id in ids {
        if seen.len() == max_batch {
            break;
        }
        if !seen.contains(id) && view.iter().any(|e| e.id == *id) {
            seen.push(*id);
        }
    }
    seen
}

fn lookup(active: &[InFlight], id: RequestId) -> &InFlight {
    active
        .iter()
        .find(|f| f.req.id == id)
        .expect("scheduler referenced unknown request")
}

fn lookup_mut(active: &mut [InFlight], id: RequestId) -> &mut InFlight {
    active
        .iter_mut()
        .find(|f| f.req.id == id)
        .expect("scheduler referenced unknown request")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrival::{ArrivalProcess, LoadGenerator, RequestClass};
    use crate::request::SloSpec;
    use crate::scheduler::{ContinuousBatchScheduler, FcfsScheduler, PriorityScheduler};
    use mcbp_model::LlmConfig;
    use mcbp_workloads::{PhaseCost, RunReport, SparsityProfile, Task, WeightGenerator};

    /// Analytic accelerator: decode pays a fixed weight-stream cost plus a
    /// per-stream context cost — the qualitative shape that makes
    /// batching matter, with exact arithmetic for assertions.
    struct Toy;

    impl Accelerator for Toy {
        fn name(&self) -> &str {
            "toy"
        }

        fn run(&self, ctx: &TraceContext) -> RunReport {
            let b = ctx.batch as f64;
            RunReport {
                prefill: PhaseCost {
                    gemm_cycles: 10.0 * ctx.task.prompt_len as f64 * b,
                    compute_pj: ctx.task.prompt_len as f64 * b,
                    ..Default::default()
                },
                decode: PhaseCost {
                    weight_load_cycles: 1_000_000.0,
                    kv_load_cycles: 100.0
                        * ctx.task.prompt_len as f64
                        * b
                        * ctx.task.decode_len as f64,
                    compute_pj: b,
                    ..Default::default()
                },
            }
        }
    }

    fn template(keep: f64) -> TraceContext {
        let model = LlmConfig::opt1b3();
        let gen = WeightGenerator::for_model(&model);
        let profile = SparsityProfile::measure(&gen.quantized_sample(16, 64, 1), 4);
        TraceContext {
            model,
            task: Task::cola(),
            batch: 1,
            weight_profile: profile,
            attention_keep: keep,
        }
    }

    fn closed_loop(n: usize, total: usize) -> Workload {
        LoadGenerator::uniform(
            Task::cola(),
            total,
            ArrivalProcess::ClosedLoop { concurrency: n },
        )
        .generate()
    }

    #[test]
    fn every_request_completes_with_full_token_count() {
        let accel = Toy;
        let sim = ServeSim::new(&accel, template(0.3), ServeConfig::default());
        let w = closed_loop(4, 12);
        let report = sim.run(&w, &mut ContinuousBatchScheduler::new());
        assert_eq!(report.completed, 12);
        assert_eq!(report.dropped, 0);
        for rec in &report.records {
            assert_eq!(rec.tokens, rec.request.decode_len);
        }
        // No declared deadlines: every completion counts toward SLO goodput.
        assert_eq!(report.slo_met, 12);
        assert!((report.slo_goodput_tokens_per_s - report.goodput_tokens_per_s).abs() < 1e-9);
    }

    #[test]
    fn continuous_batching_coalesces_and_beats_fcfs() {
        let accel = Toy;
        let sim = ServeSim::new(&accel, template(0.3), ServeConfig::default());
        let w = closed_loop(8, 16);
        let cb = sim.run(&w, &mut ContinuousBatchScheduler::new());
        let fcfs = sim.run(&w, &mut FcfsScheduler::new());
        assert!(
            cb.mean_decode_batch > 4.0,
            "coalescing {}",
            cb.mean_decode_batch
        );
        assert!((fcfs.mean_decode_batch - 1.0).abs() < 1e-9);
        assert!(
            cb.goodput_tokens_per_s > fcfs.goodput_tokens_per_s,
            "cb {} vs fcfs {}",
            cb.goodput_tokens_per_s,
            fcfs.goodput_tokens_per_s
        );
    }

    #[test]
    fn identical_seeds_replay_identically() {
        let accel = Toy;
        let sim = ServeSim::new(&accel, template(0.3), ServeConfig::default());
        let gen = LoadGenerator::uniform(
            Task::cola(),
            24,
            ArrivalProcess::Poisson {
                rate_rps: 2000.0,
                seed: 11,
            },
        );
        let a = sim.run(&gen.generate(), &mut ContinuousBatchScheduler::new());
        let b = sim.run(&gen.generate(), &mut ContinuousBatchScheduler::new());
        assert_eq!(a, b);
    }

    #[test]
    fn tight_pool_stalls_admission_but_stays_within_budget() {
        let accel = Toy;
        let model = LlmConfig::opt1b3();
        // Room for about two Cola requests' pruned KV at a time.
        let per_req = request_kv_bytes(&model, Task::cola().final_context(), 0.3);
        let cfg = ServeConfig {
            kv_budget_bytes: Some(per_req * 2 + 1024),
            ..ServeConfig::default()
        };
        let sim = ServeSim::new(&accel, template(0.3), cfg);
        let w = closed_loop(6, 6);
        let report = sim.run(&w, &mut ContinuousBatchScheduler::new());
        assert_eq!(report.completed, 6);
        assert!(report.peak_concurrency <= 2);
        assert!(report.pool.peak_reserved_bytes <= report.pool.budget_bytes);
        assert!(report.pool.admission_stall_seconds > 0.0);
        assert_eq!(
            report.preempt.preemptions, 0,
            "the default policy never preempts"
        );
    }

    #[test]
    fn closed_loop_drop_releases_the_next_request() {
        // Mixed closed-loop population where every other request (Dolly)
        // can never fit the pool: each drop must vacate its slot so the
        // trailing Cola requests still get served — total records must
        // equal the workload size.
        let accel = Toy;
        let model = LlmConfig::opt1b3();
        let budget = request_kv_bytes(&model, Task::cola().final_context(), 1.0) * 2;
        let cfg = ServeConfig {
            kv_budget_bytes: Some(budget),
            ..ServeConfig::default()
        };
        let sim = ServeSim::new(&accel, template(1.0), cfg);
        let w = LoadGenerator {
            task_mix: vec![Task::cola(), Task::dolly()],
            class_mix: vec![RequestClass::default()],
            prefix_mix: vec![None],
            count: 10,
            process: ArrivalProcess::ClosedLoop { concurrency: 2 },
        }
        .generate();
        let report = sim.run(&w, &mut ContinuousBatchScheduler::new());
        assert_eq!(
            report.completed + report.dropped,
            10,
            "no request may vanish"
        );
        assert_eq!(report.completed, 5);
        assert_eq!(report.dropped, 5);
    }

    #[test]
    fn oversized_request_is_dropped_not_wedged() {
        let accel = Toy;
        let cfg = ServeConfig {
            kv_budget_bytes: Some(1024),
            ..ServeConfig::default()
        };
        let sim = ServeSim::new(&accel, template(1.0), cfg);
        let w = closed_loop(2, 2);
        let report = sim.run(&w, &mut ContinuousBatchScheduler::new());
        assert_eq!(report.completed, 0);
        assert_eq!(report.dropped, 2);
    }

    #[test]
    fn lower_keep_admits_more_concurrency_under_same_budget() {
        let accel = Toy;
        let model = LlmConfig::opt1b3();
        let per_req_dense = request_kv_bytes(&model, Task::cola().final_context(), 1.0);
        let budget = per_req_dense * 3;
        let mk = |keep: f64| {
            let cfg = ServeConfig {
                kv_budget_bytes: Some(budget),
                ..ServeConfig::default()
            };
            let sim = ServeSim::new(&accel, template(keep), cfg);
            sim.run(&closed_loop(12, 12), &mut ContinuousBatchScheduler::new())
        };
        let dense = mk(1.0);
        let pruned = mk(0.3);
        assert!(
            pruned.peak_concurrency > dense.peak_concurrency,
            "pruned {} vs dense {}",
            pruned.peak_concurrency,
            dense.peak_concurrency
        );
    }

    #[test]
    fn tensor_parallel_fleet_scales_throughput() {
        let accel = Toy;
        let single = ServeSim::new(&accel, template(0.3), ServeConfig::default());
        let fleet = ServeSim::new(
            &accel,
            template(0.3),
            ServeConfig {
                fleet: Fleet {
                    devices: 8,
                    scaling_efficiency: Fleet::efficiency_for(8),
                },
                ..ServeConfig::default()
            },
        );
        let w = closed_loop(8, 16);
        let one = single.run(&w, &mut ContinuousBatchScheduler::new());
        let eight = fleet.run(&w, &mut ContinuousBatchScheduler::new());
        assert!(
            eight.goodput_tokens_per_s > 4.0 * one.goodput_tokens_per_s,
            "8 devices {} vs 1 device {}",
            eight.goodput_tokens_per_s,
            one.goodput_tokens_per_s
        );
        assert!(
            eight.energy_joules >= one.energy_joules,
            "energy is fleet-wide"
        );
    }

    #[test]
    fn chunked_prefill_splits_long_prompts_across_steps() {
        // An 8k prompt at chunk 512 takes 16 prefill invocations; the
        // chunk costs telescope, so total prefill cycles exceed the
        // unchunked run only by the per-invocation floors.
        let accel = Toy;
        let task = Task::dolly().with_decode(4);
        let w = Workload {
            requests: vec![Request::from_task(0, &task, 0.0)],
            closed_loop: None,
        };
        let chunked = ServeSim::new(&accel, template(0.3), ServeConfig::default());
        let mono = ServeSim::new(
            &accel,
            template(0.3),
            ServeConfig {
                prefill_chunk: None,
                ..ServeConfig::default()
            },
        );
        let c = chunked.run(&w, &mut ContinuousBatchScheduler::new());
        let m = mono.run(&w, &mut ContinuousBatchScheduler::new());
        assert_eq!(c.completed, 1);
        assert_eq!(m.completed, 1);
        assert!(
            c.duration_seconds > m.duration_seconds,
            "chunking pays per-invocation floors: {} vs {}",
            c.duration_seconds,
            m.duration_seconds
        );
        assert!(
            c.duration_seconds < 1.2 * m.duration_seconds,
            "chunk costs must telescope, not balloon: {} vs {}",
            c.duration_seconds,
            m.duration_seconds
        );
    }

    /// A two-request contention scenario: one batch-class request owns the
    /// pool, then an interactive request arrives that cannot fit.
    fn contention_workload() -> Workload {
        let batch = Request::from_task(0, &Task::mnli().with_decode(8), 0.0);
        let interactive = Request::from_task(1, &Task::cola().with_decode(4), 1.0)
            .with_priority(Priority::Interactive);
        Workload {
            requests: vec![batch, interactive],
            closed_loop: None,
        }
    }

    fn contention_budget(model: &LlmConfig) -> u64 {
        // Fits the batch request, or the interactive one, but never both.
        request_kv_bytes(model, Task::mnli().with_decode(8).final_context(), 1.0) + 1024
    }

    fn run_contention(policy: EvictionPolicy) -> ServeReport {
        let accel = Toy;
        let model = LlmConfig::opt1b3();
        let cfg = ServeConfig {
            kv_budget_bytes: Some(contention_budget(&model)),
            preempt: PreemptConfig {
                policy,
                ..PreemptConfig::default()
            },
            ..ServeConfig::default()
        };
        let sim = ServeSim::new(&accel, template(1.0), cfg);
        sim.run(&contention_workload(), &mut PriorityScheduler::new())
    }

    #[test]
    fn without_preemption_the_interactive_request_waits() {
        let report = run_contention(EvictionPolicy::None);
        assert_eq!(report.completed, 2);
        assert_eq!(report.preempt.preemptions, 0);
        // The interactive request is admitted only after the batch one
        // completes and frees the pool.
        let inter = &report.records[1];
        assert!(inter.admission_stall_cycles() > 0.0);
    }

    #[test]
    fn drop_recompute_evicts_and_replays() {
        let report = run_contention(EvictionPolicy::DropRecompute);
        assert_eq!(report.completed, 2);
        assert_eq!(report.dropped, 0);
        assert!(report.preempt.preemptions >= 1);
        assert_eq!(report.preempt.swap_out_bytes, 0);
        assert!(
            report.preempt.recompute_seconds > 0.0,
            "the victim's prefill must replay"
        );
        let batch = &report.records[0];
        let inter = &report.records[1];
        assert!(batch.preemptions >= 1, "the batch request was the victim");
        assert_eq!(batch.tokens, batch.request.decode_len);
        assert_eq!(inter.preemptions, 0);
        // Admission happens at step boundaries, so the interactive request
        // stalls at most ~one step under preemption — far below the
        // no-preemption stall (the victim's entire remaining service).
        let blocked = run_contention(EvictionPolicy::None);
        assert!(
            inter.admission_stall_cycles() * 10.0 < blocked.records[1].admission_stall_cycles(),
            "preemption stall {} vs blocked stall {}",
            inter.admission_stall_cycles(),
            blocked.records[1].admission_stall_cycles()
        );
        // The victim finishes after the interactive request despite
        // arriving first.
        assert!(batch.completed_cycle > inter.completed_cycle);
    }

    #[test]
    fn swap_spills_and_restores_without_replay() {
        let report = run_contention(EvictionPolicy::Swap);
        assert_eq!(report.completed, 2);
        assert!(report.preempt.preemptions >= 1);
        assert!(report.preempt.swap_out_bytes > 0);
        assert_eq!(
            report.preempt.swap_in_bytes, report.preempt.swap_out_bytes,
            "every spilled byte is restored"
        );
        assert!(report.preempt.swap_seconds > 0.0);
        assert!(
            report.preempt.recompute_seconds == 0.0,
            "swap never recomputes"
        );
        let batch = &report.records[0];
        assert_eq!(batch.tokens, batch.request.decode_len);
    }

    #[test]
    fn preemption_policies_replay_deterministically() {
        for policy in [EvictionPolicy::DropRecompute, EvictionPolicy::Swap] {
            let a = run_contention(policy);
            let b = run_contention(policy);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn config_validation_rejects_inconsistent_shapes_with_typed_errors() {
        let accel = Toy;
        let bad = |cfg: ServeConfig| {
            ServeSim::try_new(&accel, template(0.3), cfg)
                .err()
                .expect("config must be rejected")
        };
        assert_eq!(
            bad(ServeConfig {
                max_batch: 0,
                ..ServeConfig::default()
            }),
            ServeConfigError::ZeroMaxBatch
        );
        assert_eq!(
            bad(ServeConfig {
                ctx_bucket: 0,
                ..ServeConfig::default()
            }),
            ServeConfigError::ZeroCtxBucket
        );
        assert_eq!(
            bad(ServeConfig {
                prefill_chunk: Some(0),
                ..ServeConfig::default()
            }),
            ServeConfigError::ZeroPrefillChunk
        );
        assert_eq!(
            bad(ServeConfig {
                prefill_chunk: Some(512),
                step_token_budget: Some(0),
                ..ServeConfig::default()
            }),
            ServeConfigError::ZeroStepTokenBudget
        );
        assert_eq!(
            bad(ServeConfig {
                prefill_chunk: Some(512),
                step_token_budget: Some(511),
                ..ServeConfig::default()
            }),
            ServeConfigError::ChunkExceedsBudget {
                chunk: 512,
                budget: 511
            }
        );
        assert_eq!(
            bad(ServeConfig {
                prefill_chunk: None,
                step_token_budget: Some(1024),
                ..ServeConfig::default()
            }),
            ServeConfigError::BudgetRequiresChunkedPrefill
        );
        // The boundary case chunk == budget is legal (no piggyback slack,
        // but chunk steps can still be scheduled), as are the defaults.
        assert!(ServeConfig {
            prefill_chunk: Some(512),
            step_token_budget: Some(512),
            ..ServeConfig::default()
        }
        .validate()
        .is_ok());
        assert!(ServeConfig::default().validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "invalid ServeConfig")]
    fn new_panics_on_invalid_config_with_the_typed_message() {
        let accel = Toy;
        let _ = ServeSim::new(
            &accel,
            template(0.3),
            ServeConfig {
                prefill_chunk: Some(0),
                ..ServeConfig::default()
            },
        );
    }

    #[test]
    fn budgeted_run_mixes_steps_and_conserves_tokens() {
        let accel = Toy;
        let budgeted = ServeSim::new(
            &accel,
            template(0.3),
            ServeConfig {
                step_token_budget: Some(576),
                ..ServeConfig::default()
            },
        );
        let w = closed_loop(4, 12);
        let report = budgeted.run(&w, &mut ContinuousBatchScheduler::new());
        assert_eq!(report.completed, 12);
        for rec in &report.records {
            assert_eq!(rec.tokens, rec.request.decode_len);
        }
        // Closed-loop releases land while earlier streams decode, so the
        // budgeted scheduler must have piggybacked decodes onto chunks.
        assert!(
            report.steps.mixed_steps > 0,
            "expected mixed steps, got {:?}",
            report.steps
        );
        assert_eq!(
            report.steps.steps,
            report.steps.prefill_steps + report.steps.decode_steps + report.steps.mixed_steps
        );
        assert!(report.steps.mean_budget_utilization > 0.0);
        assert!(report.steps.mean_budget_utilization <= 1.0);
        // The unbudgeted baseline on the same trace reports no mixed
        // steps and no budget utilization.
        let baseline = ServeSim::new(&accel, template(0.3), ServeConfig::default());
        let base = baseline.run(&w, &mut ContinuousBatchScheduler::new());
        assert_eq!(base.steps.mixed_steps, 0);
        assert_eq!(base.steps.mean_budget_utilization, 0.0);
        assert_eq!(base.completed, 12);
    }

    #[test]
    fn budgeted_runs_replay_identically() {
        let accel = Toy;
        let cfg = ServeConfig {
            step_token_budget: Some(576),
            ..ServeConfig::default()
        };
        let sim = ServeSim::new(&accel, template(0.3), cfg);
        let gen = LoadGenerator::uniform(
            Task::cola(),
            24,
            ArrivalProcess::Poisson {
                rate_rps: 2000.0,
                seed: 11,
            },
        );
        let a = sim.run(&gen.generate(), &mut ContinuousBatchScheduler::new());
        let b = sim.run(&gen.generate(), &mut ContinuousBatchScheduler::new());
        assert_eq!(a, b);
    }

    #[test]
    fn impossible_slo_zeroes_slo_goodput() {
        let accel = Toy;
        let sim = ServeSim::new(&accel, template(0.3), ServeConfig::default());
        let mut w = closed_loop(2, 4);
        for r in &mut w.requests {
            r.slo = SloSpec::interactive(0.0, 0.0); // unmeetable
        }
        let report = sim.run(&w, &mut ContinuousBatchScheduler::new());
        assert_eq!(report.completed, 4);
        assert_eq!(report.slo_met, 0);
        assert_eq!(report.slo_goodput_tokens_per_s, 0.0);
        assert!(report.goodput_tokens_per_s > 0.0);
    }
}
