//! `mcbp-serve` — a discrete-event request-serving simulator over the MCBP
//! accelerator model: queues, arrival processes, batching schedulers, and
//! KV-cache admission control for many concurrent decode streams.
//!
//! The rest of the workspace evaluates one task at one batch size; this
//! crate models *serving* — the regime the BGPP motivation (§3.3) and the
//! SLIM line of work actually target, where many requests contend for
//! device memory and the scheduler decides what one accelerator invocation
//! coalesces.
//!
//! # The queueing/serving model
//!
//! **Clock.** Simulated time is the accelerator's 1 GHz core clock
//! ([`CLOCK_HZ`]), the same unit as [`mcbp_workloads::RunReport`] cycles.
//! Nothing reads the wall clock and every random draw comes from a seeded
//! generator, so a `(workload, scheduler, config)` triple replays
//! bit-identically.
//!
//! **Requests.** A [`Request`] is a prompt of `prompt_len` tokens followed
//! by `decode_len` generated tokens, derived from a benchmark
//! [`mcbp_workloads::Task`] shape. Its lifecycle
//! ([`RequestState`]) is `Queued → AwaitingPrefill → Decoding → Completed`
//! (or `Dropped` if its KV footprint can never fit).
//!
//! **Arrivals.** A [`LoadGenerator`] materializes a [`Workload`] from an
//! [`ArrivalProcess`]: `ClosedLoop` (a fixed in-flight population, for
//! capacity probing), `Poisson` (open-loop, exponential gaps), or `Bursty`
//! (on/off modulated Poisson preserving the long-run rate — the regime
//! that separates continuous batching from FCFS), or `Diurnal`
//! (sinusoidally rate-modulated Poisson, the multi-phase day/night
//! traffic the trace sampler exploits).
//!
//! **Steps, not events.** The simulator advances in *scheduler steps*:
//! each iteration the [`Scheduler`] inspects admitted work and plans one
//! batched accelerator invocation — a prefill chunk of admitted prompts,
//! one decode token across up to `max_batch` coalesced streams, or (under
//! a step token budget) both at once ([`StepPlan`]). The step is costed
//! by the cycle-level model through a
//! memoizing [`StepCostModel`] (contexts quantized to `ctx_bucket`-token
//! boundaries with linear interpolation in between), the clock advances
//! by the step latency, and completions retire. Decode invocations
//! amortize the weight stream across coalesced streams exactly as the
//! underlying simulator does for batched workloads — that amortization is
//! what continuous batching harvests and FCFS forfeits.
//!
//! **Chunked prefill.** Long prompts do not monopolize the device: a
//! prefill invocation advances each selected prompt's *prefill cursor* by
//! at most [`ServeConfig::prefill_chunk`] tokens (default 512), costed
//! incrementally, and the coalescing schedulers alternate prefill chunks
//! with decode steps. TTFT of a queued interactive request no longer
//! hides behind an 8k-token prefill: under the [`PriorityScheduler`] its
//! prompt's first chunk cuts in between a batch-class prompt's chunks. KV
//! residency grows per chunk, and a mid-prefill drop-and-recompute victim
//! replays only the chunks it had completed.
//!
//! **Mixed steps under a shared token budget.** With
//! [`ServeConfig::step_token_budget`] set, a scheduler step is no longer
//! *either* a prefill chunk *or* a decode batch: every step is one
//! budgeted invocation in which prefill members count their chunk's
//! tokens and decode members count one token each, and the coalescing
//! schedulers pack decode streams into the budget left over by the
//! prefill chunk (Sarathi-style piggybacking). Decode streams keep
//! advancing *every* step while a long prompt prefills — and the
//! piggybacked tokens ride the chunk's weight stream, paying only their
//! incremental cost ([`StepCostModel::mixed_step_cost`]). The
//! [`PriorityScheduler`] additionally protects TTFT: an interactive
//! stream's pending first token wins a short decode-only step over a
//! batch-class chunk, so the mixed-step TPOT gain never costs the
//! interactive class its chunked-prefill TTFT win. Budget `None`
//! (the default) keeps the PR 3 phase-alternating behavior bit-exact as
//! the ablation baseline; invalid combinations (zero budget, zero chunk,
//! chunk wider than the budget, budget without chunking) are rejected
//! with a typed [`ServeConfigError`]. [`ServeReport::steps`] reports the
//! composition: step counts per kind, mixed-step fraction, and mean
//! budget utilization.
//!
//! **KV-cache admission.** A [`KvCachePool`] holds the byte budget —
//! device HBM capacity minus resident INT8 weights
//! ([`KvCachePool::from_memory_spec`]) — and admission reserves each
//! request's *peak* residency up front: KV bytes at final context scaled
//! by the BGPP attention-keep ratio ([`request_kv_bytes`]). Reserving the
//! peak makes the budget invariant unbreakable by decode-time growth;
//! lowering the keep ratio shrinks every reservation and therefore raises
//! admissible concurrency under the same budget. Reservations are tracked
//! per request in the pool's own ledger, so releases and evictions free
//! exactly what was held. When the pool is full the best-ordered candidate
//! blocks, and the stall is reported.
//!
//! **Priorities, preemption, SLOs.** Requests carry a scheduling class
//! ([`Priority::Interactive`] outranks [`Priority::Batch`]) and optional
//! TTFT/TPOT deadlines ([`SloSpec`]). Admission is priority-ordered, and
//! under pool pressure an [`EvictionPolicy`] may *preempt* strictly
//! lower-priority victims: drop-and-recompute discards their KV and
//! replays the prefill on resume, while swap spills it over a host link
//! and restores it later (see [`preempt`](crate::EvictionPolicy) for the
//! cost tradeoff). [`ServeReport`] separates raw goodput from SLO-aware
//! goodput (only SLO-met requests' tokens), per class via
//! [`ServeReport::slo_goodput_for`]. The [`PriorityScheduler`] coalesces
//! like continuous batching but never displaces interactive streams.
//!
//! **Fleets.** Two orthogonal scaling axes. [`ServeConfig::fleet`] makes
//! *one* serving instance faster via the §5.3 tensor-parallel scaling
//! model ([`mcbp_workloads::Fleet`]): step latency divides by the group's
//! effective speedup and energy pays the communication tax.
//! [`ServeSim::run_fleet`] scales *out* instead: N independent simulated
//! devices, each with its own [`KvCachePool`], scheduler state, and
//! clock, behind a pluggable [`Router`], with per-device
//! utilization/goodput breakdowns in [`ServeReport::devices`]. Fleets
//! need not be uniform: [`ServeSim::run_fleet_profiles`] builds each
//! device from its own [`DeviceProfile`] — accelerator generation (its
//! own step-cost model), BGPP keep ratio, pool budget, host link, and a
//! relative throughput weight — and [`DispatchPolicy`] spans round-robin,
//! join-shortest-queue, least-loaded-pool, **weighted JSQ** (queued
//! tokens normalized by profile throughput, the policy that makes
//! mixed-generation fleets pay off), and **prefix-affinity** routing.
//!
//! **Disaggregated prefill/decode.** A fleet can specialize devices by
//! [`DeviceRole`]: `Prefill` devices run prompts and each request's
//! first token, `Decode` devices run the continuations, and the default
//! `Unified` does both (keeping every pre-existing config bit-exact).
//! Routing becomes two-stage — stage 1 places the prompt on a
//! prefill-capable device; once a `Prefill`-role device finishes the
//! prompt and emits token 1 (the DistServe cut point — TTFT never
//! crosses the link), stage 2 routes the decode continuation to a
//! decode-capable device and the request's resident KV bytes ride the
//! source's modeled host link ([`SwapLedger`] rate) to the destination.
//! A [`HandoffLedger`] on the destination tracks every transfer's bytes
//! from departure to admission so conservation is checkable at any
//! cycle, and [`HandoffReport`] surfaces counts, bytes, and link time
//! per lane and fleet-wide. See [`DispatchPolicy`] for the routing
//! stages and why handoffs preserve deterministic parallel driving.
//!
//! **Prefix reuse.** Shared prompt prefixes (system prompts, few-shot
//! headers) are the serving-granularity face of the repetitiveness MCBP
//! exploits at the bit level: a [`Request`] may declare a
//! [`SharedPrefix`], the [`KvCachePool`] keeps a refcounted
//! resident-prefix ledger (bytes pinned while referenced, warm entries
//! reclaimed last under admission pressure), and an admitted prompt whose
//! prefix is already resident reserves only its unshared suffix and
//! starts its prefill cursor past the shared region — chunked prefill and
//! the step token budget then cover only new work. The
//! [`DispatchPolicy::PrefixAffinity`] router steers same-prefix requests
//! to the device already holding their KV; [`ServeReport::prefix`] (and
//! each [`DeviceReport`] lane) counts hits, misses, and reused tokens.
//!
//! **Reports.** A [`ServeReport`] aggregates TTFT, per-output-token
//! latency, and end-to-end latency (mean/p50/p95/p99), goodput
//! (decoded tokens per second of completed requests), request throughput,
//! mean decode coalescing, peak concurrency, pool occupancy, and energy.
//!
//! **Recording.** The traced entry points ([`ServeSim::run_traced`],
//! [`ServeSim::run_fleet_profiles_traced`]) additionally return a
//! [`RunTrace`]: the materialized workload plus the cycle-ordered
//! [`TraceEvent`] stream (routes, admissions, drops, steps, preemptions)
//! the run emitted. The `mcbp-trace` crate serializes, replays, and
//! phase-samples these histories; untraced runs allocate no event storage
//! and behave bit-identically to before.
//!
//! # Example
//!
//! ```
//! use mcbp_model::LlmConfig;
//! use mcbp_serve::{
//!     ArrivalProcess, ContinuousBatchScheduler, LoadGenerator, ServeConfig, ServeSim,
//! };
//! use mcbp_sim::{McbpConfig, McbpSim};
//! use mcbp_workloads::{SparsityProfile, Task, TraceContext, WeightGenerator};
//!
//! let model = LlmConfig::opt1b3();
//! let gen = WeightGenerator::for_model(&model);
//! let profile = SparsityProfile::measure(&gen.quantized_sample(32, 256, 1), 4);
//! let template = TraceContext {
//!     model, task: Task::cola(), batch: 1,
//!     weight_profile: profile, attention_keep: 0.3,
//! };
//! let mcbp = McbpSim::new(McbpConfig::default());
//! let sim = ServeSim::new(&mcbp, template, ServeConfig::default());
//! let workload = LoadGenerator::uniform(
//!     Task::cola(), 4, ArrivalProcess::ClosedLoop { concurrency: 2 },
//! ).generate();
//! let report = sim.run(&workload, &mut ContinuousBatchScheduler::new());
//! assert_eq!(report.completed, 4);
//! assert!(report.goodput_tokens_per_s > 0.0);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod arrival;
mod cost;
mod dispatch;
mod parallel;
mod pool;
mod preempt;
mod profile;
mod record;
mod report;
mod request;
mod scheduler;
mod sim;

pub use arrival::{ArrivalProcess, LoadGenerator, RequestClass, Workload};
pub use cost::{StepCost, StepCostModel};
pub use dispatch::{DeviceView, DispatchPolicy, PolicyRouter, Router};
pub use pool::{request_kv_bytes, KvCachePool, PrefixResidency, Reservation};
pub use preempt::{EvictionPolicy, HandoffLedger, PreemptConfig, SwapLedger, HOST_LINK_RATIO};
pub use profile::{DeviceProfile, DeviceRole};
pub use record::{RunTrace, TraceEvent};
pub use report::{
    DeviceReport, HandoffReport, LatencyStats, PoolReport, PreemptReport, PrefixReport, RunTotals,
    ServeReport, StepReport,
};
pub use request::{
    PrefixId, Priority, Request, RequestId, RequestRecord, RequestState, SharedPrefix, SloSpec,
};
pub use scheduler::{
    ContinuousBatchScheduler, FcfsScheduler, PriorityScheduler, SchedEntry, SchedView, Scheduler,
    StepPlan,
};
pub use sim::{ServeConfig, ServeConfigError, ServeSim};

/// The simulated core clock in Hz (1 GHz, matching the cycle model).
pub const CLOCK_HZ: f64 = 1e9;
