//! Per-device fleet dispatch: serving one workload across N independent
//! simulated devices.
//!
//! Unlike the §5.3 tensor-parallel scaling in
//! [`ServeConfig::fleet`](crate::ServeConfig::fleet)
//! (which makes *one* serving instance faster), fleet dispatch models
//! **data parallelism across whole devices**: every device owns its own
//! [`crate::KvCachePool`], scheduler state, and clock, and a front-end
//! dispatcher assigns each arriving request to exactly one device under a
//! pluggable [`DispatchPolicy`]. This is the regime where per-device
//! memory capacity — not aggregate compute — bounds serving concurrency,
//! which is precisely what the BGPP attention-keep ratio relaxes.
//!
//! # The drive loop
//!
//! Devices advance asynchronously on their own clocks. The driver
//! repeatedly (1) runs admission on every device, (2) dispatches every
//! arrival that is due — i.e. not later than the earliest clock among
//! busy devices (with all devices idle the next arrival dispatches
//! immediately and the target device fast-forwards to it) — and (3)
//! executes one step on the busy device with the earliest clock.
//! Closed-loop workloads release their next request through the global
//! dispatcher whenever any device completes (or drops) one, so the
//! in-flight population is fleet-wide.
//!
//! Dispatch decisions read each device's state as of its *own* clock. A
//! device whose clock runs ahead of an arrival admits it at its next
//! boundary, exactly as a single device admits requests that arrive
//! mid-step — the modeled dispatcher observes queue contents, which only
//! change at step boundaries.
//!
//! Everything is deterministic: ties in every policy break toward the
//! lowest device index, so a `(workload, policy, config)` triple replays
//! bit-identically.

use std::collections::VecDeque;

use crate::arrival::Workload;
use crate::report::{DeviceReport, PoolReport, PreemptReport, RunTotals, ServeReport, StepReport};
use crate::request::Request;
use crate::scheduler::Scheduler;
use crate::sim::{DeviceSim, ServeSim};
use crate::CLOCK_HZ;

/// How the fleet front-end assigns an arriving request to a device.
///
/// All policies are deterministic; ties break toward the lowest device
/// index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DispatchPolicy {
    /// Cycle through devices in index order, ignoring load — the
    /// baseline that a load-aware policy must beat on skewed traffic.
    RoundRobin,
    /// Join shortest queue: pick the device with the fewest queued tokens
    /// (pending prompts and decodes plus unfinished admitted/suspended
    /// work) — see [`DispatchPolicy::JoinShortestQueue`]'s metric in
    /// `DeviceSim::queued_tokens`.
    JoinShortestQueue,
    /// Pick the device whose KV pool has the smallest reserved fraction —
    /// balances *memory* pressure rather than compute backlog, which
    /// matters when long-context requests dominate the pool.
    LeastLoadedPool,
}

impl DispatchPolicy {
    /// Short display label used in reports.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            DispatchPolicy::RoundRobin => "rr",
            DispatchPolicy::JoinShortestQueue => "jsq",
            DispatchPolicy::LeastLoadedPool => "llp",
        }
    }

    /// Every dispatch policy, for sweeps.
    pub const ALL: [DispatchPolicy; 3] = [
        DispatchPolicy::RoundRobin,
        DispatchPolicy::JoinShortestQueue,
        DispatchPolicy::LeastLoadedPool,
    ];
}

impl<'a> ServeSim<'a> {
    /// Runs one workload across `devices` independent simulated devices
    /// under the given dispatch policy. Every device gets its own KV pool
    /// (budgeted per
    /// [`ServeConfig::kv_budget_bytes`](crate::ServeConfig::kv_budget_bytes)),
    /// its own scheduler
    /// from `make_scheduler`, and its own clock; the merged
    /// [`ServeReport`] carries a per-device breakdown in
    /// [`ServeReport::devices`].
    ///
    /// ```
    /// use mcbp_model::LlmConfig;
    /// use mcbp_serve::{
    ///     ArrivalProcess, ContinuousBatchScheduler, DispatchPolicy, LoadGenerator,
    ///     ServeConfig, ServeSim,
    /// };
    /// use mcbp_sim::{McbpConfig, McbpSim};
    /// use mcbp_workloads::{SparsityProfile, Task, TraceContext, WeightGenerator};
    ///
    /// let model = LlmConfig::opt1b3();
    /// let gen = WeightGenerator::for_model(&model);
    /// let profile = SparsityProfile::measure(&gen.quantized_sample(32, 256, 1), 4);
    /// let template = TraceContext {
    ///     model, task: Task::cola(), batch: 1,
    ///     weight_profile: profile, attention_keep: 0.3,
    /// };
    /// let mcbp = McbpSim::new(McbpConfig::default());
    /// let sim = ServeSim::new(&mcbp, template, ServeConfig::default());
    /// let workload = LoadGenerator::uniform(
    ///     Task::cola(), 6, ArrivalProcess::ClosedLoop { concurrency: 6 },
    /// ).generate();
    /// let report = sim.run_fleet(
    ///     &workload, 2, DispatchPolicy::JoinShortestQueue,
    ///     &mut || Box::new(ContinuousBatchScheduler::new()),
    /// );
    /// assert_eq!(report.completed, 6);
    /// assert_eq!(report.devices.len(), 2);
    /// let dispatched: usize = report.devices.iter().map(|d| d.dispatched).sum();
    /// assert_eq!(dispatched, 6);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics on a zero device count, on internal accounting violations,
    /// or on a scheduler contract violation.
    #[must_use]
    pub fn run_fleet(
        &self,
        workload: &Workload,
        devices: usize,
        policy: DispatchPolicy,
        make_scheduler: &mut dyn FnMut() -> Box<dyn Scheduler>,
    ) -> ServeReport {
        assert!(devices >= 1, "a fleet needs at least one device");
        let mut scheds: Vec<Box<dyn Scheduler>> = (0..devices).map(|_| make_scheduler()).collect();
        let mut refs: Vec<&mut dyn Scheduler> =
            scheds.iter_mut().map(|s| s.as_mut() as _).collect();
        drive(self, workload, &mut refs, policy)
    }
}

/// Picks the target device for one arrival under the given policy.
fn pick_device(policy: DispatchPolicy, devs: &[DeviceSim<'_, '_>], rr: &mut usize) -> usize {
    match policy {
        DispatchPolicy::RoundRobin => {
            let i = *rr % devs.len();
            *rr += 1;
            i
        }
        DispatchPolicy::JoinShortestQueue => (0..devs.len())
            .min_by_key(|&i| (devs[i].queued_tokens(), i))
            .expect("non-empty fleet"),
        DispatchPolicy::LeastLoadedPool => (0..devs.len())
            .min_by(|&a, &b| {
                devs[a]
                    .pool_load()
                    .total_cmp(&devs[b].pool_load())
                    .then(a.cmp(&b))
            })
            .expect("non-empty fleet"),
    }
}

/// Releases the next closed-loop request (if any) at the given instant —
/// a completion or a drop each vacate exactly one population slot. The
/// released entry is re-inserted in arrival order: fleet devices complete
/// on asynchronous clocks, so release instants are *not* nondecreasing
/// and an in-place write would break the sorted-deque invariant the
/// front-gated dispatch loop relies on.
fn release_next_closed_loop(pending: &mut VecDeque<Request>, now: f64) {
    let Some(idx) = pending.iter().position(|r| r.arrival_cycle.is_infinite()) else {
        return;
    };
    let mut req = pending.remove(idx).expect("index valid");
    req.arrival_cycle = now;
    let pos = pending
        .iter()
        .position(|r| r.arrival_cycle > now)
        .unwrap_or(pending.len());
    pending.insert(pos, req);
}

/// The shared drive loop: one scheduler slice entry per device.
pub(crate) fn drive(
    sim: &ServeSim<'_>,
    workload: &Workload,
    scheds: &mut [&mut dyn Scheduler],
    policy: DispatchPolicy,
) -> ServeReport {
    let n = scheds.len();
    assert!(n >= 1, "at least one device");
    let closed = workload.closed_loop.is_some();
    let mut devs: Vec<DeviceSim<'_, '_>> = (0..n).map(|_| DeviceSim::new(sim)).collect();
    // Kept arrival-sorted (generated workloads already are; sorting here
    // makes hand-built ones safe too, and closed-loop releases re-insert
    // their entry at its sorted position).
    let mut pending: VecDeque<Request> = workload.requests.clone().into();
    pending
        .make_contiguous()
        .sort_by(|a, b| a.arrival_cycle.total_cmp(&b.arrival_cycle));
    let mut rr = 0usize;

    loop {
        // ---- admission + dispatch, to a fixpoint ----
        loop {
            let mut progress = false;
            for dev in &mut devs {
                let drops = dev.admit();
                if drops > 0 {
                    progress = true;
                    if closed {
                        for _ in 0..drops {
                            release_next_closed_loop(&mut pending, dev.now);
                        }
                    }
                }
            }
            // Dispatch every arrival due at or before the earliest busy
            // device clock; with the whole fleet idle the next arrival is
            // due immediately (its device fast-forwards to it).
            while let Some(head) = pending.front() {
                if !head.arrival_cycle.is_finite() {
                    break;
                }
                let min_busy = devs
                    .iter()
                    .filter(|d| d.has_active())
                    .map(|d| d.now)
                    .min_by(f64::total_cmp);
                if min_busy.is_some_and(|clock| head.arrival_cycle > clock) {
                    break;
                }
                let req = pending.pop_front().expect("head exists");
                let target = pick_device(policy, &devs, &mut rr);
                devs[target].enqueue(req);
                let drops = devs[target].admit();
                if closed && drops > 0 {
                    let t = devs[target].now;
                    for _ in 0..drops {
                        release_next_closed_loop(&mut pending, t);
                    }
                }
                progress = true;
            }
            if !progress {
                break;
            }
        }

        // ---- step the busy device with the earliest clock ----
        let Some(i) = (0..n)
            .filter(|&i| devs[i].has_active())
            .min_by(|&a, &b| devs[a].now.total_cmp(&devs[b].now))
        else {
            break; // drained (closed-loop leftovers can never release)
        };
        let completions = devs[i].step(scheds[i]);
        if closed && completions > 0 {
            let t = devs[i].now;
            for _ in 0..completions {
                release_next_closed_loop(&mut pending, t);
            }
        }
    }
    debug_assert!(
        devs.iter().all(DeviceSim::is_drained),
        "driver exited with undone device work"
    );

    // ---- merge per-device results ----
    let duration_cycles = devs.iter().map(|d| d.now).fold(0.0, f64::max);
    let span_s = (duration_cycles / CLOCK_HZ).max(1e-12);
    let mut records = Vec::new();
    let mut lanes = Vec::new();
    let mut pool = PoolReport::default();
    let mut preempt = PreemptReport::default();
    let mut steps = StepReport::default();
    let mut energy_pj = 0.0;
    let mut decode_invocations = 0u64;
    let mut decode_streams = 0u64;
    let mut peak_concurrency = 0usize;
    for (i, d) in devs.iter_mut().enumerate() {
        let lane_pool = d.pool_report();
        let lane_preempt = d.preempt_report();
        let lane_steps = d.step_report();
        let completed = d.records.iter().filter(|r| r.completed()).count();
        let tokens: usize = d
            .records
            .iter()
            .filter(|r| r.completed())
            .map(|r| r.tokens)
            .sum();
        lanes.push(DeviceReport {
            device: i,
            dispatched: d.dispatched,
            completed,
            dropped: d.records.len() - completed,
            goodput_tokens_per_s: tokens as f64 / span_s,
            utilization: if duration_cycles > 0.0 {
                d.busy_cycles() / duration_cycles
            } else {
                0.0
            },
            energy_joules: d.energy_pj * 1e-12,
            pool: lane_pool,
            preempt: lane_preempt,
            steps: lane_steps,
        });
        // Fleet aggregates: budgets and stalls add; the byte peaks are
        // per-device maxima taken at different local instants, so their
        // sum is an upper bound on any fleet-wide simultaneous figure.
        // Means are time-weighted onto the fleet span: each device's
        // mean covers only its own clock window, so a device that
        // drained early must not count as if it stayed resident for the
        // whole run.
        pool.budget_bytes += lane_pool.budget_bytes;
        pool.peak_resident_bytes += lane_pool.peak_resident_bytes;
        pool.peak_reserved_bytes += lane_pool.peak_reserved_bytes;
        if duration_cycles > 0.0 {
            pool.mean_resident_bytes += lane_pool.mean_resident_bytes * d.now / duration_cycles;
        }
        pool.admission_stall_seconds += lane_pool.admission_stall_seconds;
        preempt.preemptions += lane_preempt.preemptions;
        preempt.swap_out_bytes += lane_preempt.swap_out_bytes;
        preempt.swap_in_bytes += lane_preempt.swap_in_bytes;
        preempt.swap_seconds += lane_preempt.swap_seconds;
        preempt.recompute_seconds += lane_preempt.recompute_seconds;
        preempt.peak_swap_held_bytes += lane_preempt.peak_swap_held_bytes;
        // Step counts add; the budget utilization is each device's mean
        // weighted by its step count (renormalized below).
        steps.steps += lane_steps.steps;
        steps.prefill_steps += lane_steps.prefill_steps;
        steps.decode_steps += lane_steps.decode_steps;
        steps.mixed_steps += lane_steps.mixed_steps;
        steps.mean_budget_utilization +=
            lane_steps.mean_budget_utilization * lane_steps.steps as f64;
        energy_pj += d.energy_pj;
        decode_invocations += d.decode_invocations;
        decode_streams += d.decode_streams;
        peak_concurrency += d.peak_concurrency;
        records.append(&mut d.records);
    }
    records.sort_by_key(|r| r.request.id);
    if steps.steps > 0 {
        steps.mean_budget_utilization /= steps.steps as f64;
    }
    let mean_decode_batch = if decode_invocations == 0 {
        0.0
    } else {
        decode_streams as f64 / decode_invocations as f64
    };
    let name = if n == 1 {
        scheds[0].name().to_owned()
    } else {
        format!("{} [{}x {}]", scheds[0].name(), n, policy.name())
    };
    ServeReport::summarize(
        name,
        records,
        RunTotals {
            duration_cycles,
            mean_decode_batch,
            peak_concurrency,
            energy_pj,
            offered_rps: workload.offered_rps(),
            preempt,
            steps,
        },
        pool,
        lanes,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::Request;
    use crate::sim::ServeConfig;
    use mcbp_model::LlmConfig;
    use mcbp_workloads::{
        Accelerator, PhaseCost, RunReport, SparsityProfile, Task, TraceContext, WeightGenerator,
    };

    #[test]
    fn out_of_order_releases_keep_the_pending_deque_sorted() {
        // Fleet devices complete on asynchronous clocks, so release
        // instants arrive out of order; each release must land at its
        // sorted position, not at the front of the infinite tail.
        let mut pending: VecDeque<Request> = (0..3)
            .map(|i| Request::from_task(i, &Task::cola(), f64::INFINITY))
            .collect();
        release_next_closed_loop(&mut pending, 110.0);
        release_next_closed_loop(&mut pending, 105.0);
        let arrivals: Vec<f64> = pending.iter().map(|r| r.arrival_cycle).collect();
        assert_eq!(arrivals[..2], [105.0, 110.0]);
        assert!(arrivals[2].is_infinite());
        // An early release sorts ahead of the finite entries; once no
        // infinite entry remains, further releases are no-ops.
        release_next_closed_loop(&mut pending, 1.0);
        release_next_closed_loop(&mut pending, 120.0);
        assert_eq!(pending.len(), 3);
        let arrivals: Vec<f64> = pending.iter().map(|r| r.arrival_cycle).collect();
        assert_eq!(arrivals, [1.0, 105.0, 110.0]);
    }

    struct Flat;

    impl Accelerator for Flat {
        fn name(&self) -> &str {
            "flat"
        }

        fn run(&self, _ctx: &TraceContext) -> RunReport {
            RunReport {
                prefill: PhaseCost {
                    gemm_cycles: 100.0,
                    ..Default::default()
                },
                decode: PhaseCost {
                    weight_load_cycles: 100.0,
                    ..Default::default()
                },
            }
        }
    }

    /// Exactly tied devices must deterministically dispatch to the lowest
    /// device id under every load-aware policy, so fleet runs replay
    /// identically across platforms (no dependence on iteration order or
    /// float comparison quirks).
    #[test]
    fn tied_devices_break_toward_the_lowest_id() {
        let accel = Flat;
        let model = LlmConfig::opt1b3();
        let gen = WeightGenerator::for_model(&model);
        let profile = SparsityProfile::measure(&gen.quantized_sample(16, 64, 1), 4);
        let template = TraceContext {
            model,
            task: Task::cola(),
            batch: 1,
            weight_profile: profile,
            attention_keep: 0.3,
        };
        let sim = ServeSim::new(&accel, template, ServeConfig::default());
        let mut devs: Vec<DeviceSim<'_, '_>> = (0..3).map(|_| DeviceSim::new(&sim)).collect();
        let mut rr = 0usize;
        // All three devices are fresh: queued tokens and pool loads tie
        // exactly, so the lowest id must win.
        assert_eq!(
            pick_device(DispatchPolicy::JoinShortestQueue, &devs, &mut rr),
            0
        );
        assert_eq!(
            pick_device(DispatchPolicy::LeastLoadedPool, &devs, &mut rr),
            0
        );
        // Load device 0; JSQ now prefers the still-empty device 1, and a
        // 1-vs-2 tie again breaks toward the lower id.
        devs[0].enqueue(Request::from_task(0, &Task::cola(), 0.0));
        assert_eq!(
            pick_device(DispatchPolicy::JoinShortestQueue, &devs, &mut rr),
            1
        );
        // Identical partial loads on 0 and 1 still tie-break to 0 once 2
        // is the loaded one.
        let mut devs: Vec<DeviceSim<'_, '_>> = (0..3).map(|_| DeviceSim::new(&sim)).collect();
        devs[2].enqueue(Request::from_task(1, &Task::cola(), 0.0));
        let mut rr = 0usize;
        assert_eq!(
            pick_device(DispatchPolicy::JoinShortestQueue, &devs, &mut rr),
            0
        );
        assert_eq!(
            pick_device(DispatchPolicy::LeastLoadedPool, &devs, &mut rr),
            0
        );
    }
}
