//! Per-device fleet dispatch: routing one workload across N independently
//! simulated devices.
//!
//! Unlike the §5.3 tensor-parallel scaling in
//! [`ServeConfig::fleet`](crate::ServeConfig::fleet)
//! (which makes *one* serving instance faster), fleet dispatch models
//! **data parallelism across whole devices**: every device owns its own
//! [`crate::KvCachePool`], scheduler state, and clock, and a front-end
//! [`Router`] assigns each arriving request to exactly one device. Devices
//! are described by per-device [`crate::DeviceProfile`]s — accelerator
//! generation, BGPP keep ratio, pool budget, host link, and relative
//! throughput — so a fleet can mix device generations instead of cloning
//! one configuration N times.
//!
//! # The router
//!
//! A [`Router`] sees one [`DeviceView`] per device — queued tokens, pool
//! headroom, profile throughput, and the device's **resident prefixes** —
//! and picks the target index. [`DispatchPolicy`] provides five built-in
//! routers:
//!
//! * [`DispatchPolicy::RoundRobin`] — load-blind baseline.
//! * [`DispatchPolicy::JoinShortestQueue`] — fewest queued tokens.
//! * [`DispatchPolicy::LeastLoadedPool`] — smallest reserved pool share.
//! * [`DispatchPolicy::WeightedJsq`] — queued tokens **normalized by the
//!   profile's throughput**, so a device at half the throughput is
//!   treated as holding twice the backlog per token: the policy that
//!   makes heterogeneous fleets pay off (SLIM-style load-aware placement).
//! * [`DispatchPolicy::PrefixAffinity`] — prefers the device already
//!   holding the longest matching resident [`crate::SharedPrefix`]
//!   (its KV can be reused, so only the unshared suffix prefills), and
//!   falls back to weighted JSQ when no device holds the prefix.
//!
//! Custom routers plug in through
//! [`ServeSim::run_fleet_with_router`](crate::ServeSim::run_fleet_with_router).
//!
//! # The drive loop
//!
//! Devices advance asynchronously on their own clocks. The driver
//! repeatedly (1) runs admission on every device, (2) dispatches every
//! arrival that is due — i.e. not later than the earliest clock among
//! busy devices (with all devices idle the next arrival dispatches
//! immediately and the target device fast-forwards to it) — and (3)
//! executes one step on the busy device with the earliest clock.
//! Closed-loop workloads release their next request through the global
//! dispatcher whenever any device completes (or drops) one, so the
//! in-flight population is fleet-wide.
//!
//! Dispatch decisions read each device's state as of its *own* clock. A
//! device whose clock runs ahead of an arrival admits it at its next
//! boundary, exactly as a single device admits requests that arrive
//! mid-step — the modeled dispatcher observes queue contents, which only
//! change at step boundaries.
//!
//! Everything is deterministic: ties in every policy break toward the
//! lowest device index, so a `(workload, policy, profiles)` triple
//! replays bit-identically.
//!
//! # Two-stage routing for disaggregated fleets
//!
//! With [`crate::DeviceRole`]-specialized profiles, routing splits into
//! two stages (the DistServe/Splitwise-style prefill/decode
//! disaggregation):
//!
//! 1. **Stage 1 — prompt placement.** An arriving request is routed over
//!    the *prefill-capable* devices only (`Unified` or `Prefill`). The
//!    router sees the candidate subset renumbered to contiguous
//!    positions — position-based policies (round-robin) and
//!    identity-based ones (the JSQ family) both pick within the
//!    candidates, and the pick maps back to the fleet index. Candidate
//!    order preserves ascending fleet indices, so the "lowest index"
//!    tie-break is unchanged.
//! 2. **Stage 2 — decode placement.** A `Prefill`-role device finishes
//!    the prompt **and generates the request's first token** (the
//!    DistServe cut point: TTFT is produced entirely on the prefill
//!    side and never waits on a second admission). Then the request
//!    leaves its active set: its KV is released from the source pool and
//!    the driver routes the continuation over the *decode-capable* devices
//!    (same router instance, same renumbering scheme). The KV bytes
//!    ride the source device's host link
//!    ([`crate::PreemptConfig::transfer_cycles`]) — the transfer
//!    overlaps compute DMA-style, so the latency lands on the request's
//!    availability (TTFT), not on either device's clock — and are held
//!    by the destination's [`crate::HandoffLedger`] until its admission
//!    re-reserves them ([`TraceEvent::Handoff`] records the hop).
//!    `Unified` devices never hand off: they decode locally, which is
//!    why an all-`Unified` fleet takes the pre-disaggregation code
//!    paths bit-exactly.
//!
//! Prompt-only requests (`decode_len == 0`) and single-token requests
//! (`decode_len == 1`) complete on their prefill device — there is no
//! continuation to move. A handoff whose peak KV can never fit the
//! destination pool is dropped on arrival (the prefill pool may simply
//! be larger) with its delivered first token on the record; landed
//! handoffs compete for admission like any other candidate, keyed by
//! their link-arrival instant, and may themselves preempt victims.
//!
//! # The parallel fleet drive
//!
//! With [`ServeConfig::fleet_workers`](crate::ServeConfig::fleet_workers)
//! set to two or more, the inter-dispatch device stepping runs on a pool
//! of scoped worker threads (`crate::parallel`) instead of one step at a
//! time — bit-exact with the sequential loop, which remains the
//! reference path.
//!
//! **Why devices are independent between dispatch points.** Let `H` be
//! the arrival cycle of the earliest pending (finite) arrival. The
//! dispatch gate only opens once the *minimum* clock among busy devices
//! reaches `H`, so until every busy device's clock crosses `H` no new
//! request enters the fleet, and the router observes nothing. In that
//! window the sequential loop interleaves `step`/`admit` across devices
//! (earliest clock first), but a device's queue, pool, and clock change
//! only through its *own* steps and admissions — the interleaved
//! admission passes on other devices are no-ops. Each busy device with
//! clock below `H` therefore executes exactly the subsequence of
//! operations the sequential loop would give it: `step` then `admit`,
//! repeated while it has active work and its clock is below `H`. The
//! parallel drive runs those per-device subsequences concurrently (one
//! *phase* per dispatch point), then re-runs the dispatch fixpoint
//! exactly as the sequential loop does. Closed-loop runs serialize while
//! unreleased population slots remain — there a completion anywhere
//! feeds the global dispatcher — and parallelize the drain tail, where
//! releases are no-ops.
//!
//! **Why handoffs do not break the independence argument.** A handoff is
//! cross-device coupling the horizon cannot see: a `Prefill`-role device
//! finishing a prompt mid-phase would hand the continuation to another
//! device *before* `H`. The parallel drive therefore serializes —
//! earliest clock first, exactly like the sequential loop — whenever any
//! `Prefill`-role device holds active work, so every handoff is produced,
//! routed, and booked in sequential order. Once no `Prefill`-role device
//! is busy, no new handoff can appear before the next dispatch point
//! (only `Prefill`-role devices extract handoffs, and an idle device is
//! not stepped mid-phase), and handoffs already *routed* are local state
//! of their destination — a fixed arrival instant admitted by that
//! device's own `admit`, no different from a queued arrival — so the
//! phase argument above applies unchanged. In the common disaggregated
//! regime the prefill pool drains prompts in bursts and the long decode
//! tail dominates; the decode pool still parallelizes across workers.
//!
//! **Why the merge is deterministic.** Per-device end states are
//! identical by the argument above, and every fleet aggregate is either
//! accumulated in device index order, computed by an order-independent
//! sweep (the fleet peak concurrency), or sorted by an explicit total
//! order (the trace timeline's `(cycle, device, kind, seq)` key — see
//! [`TraceEvent::order_key`]). The parallel drive's [`ServeReport`] and
//! [`RunTrace`] are asserted bit-equal to the sequential reference
//! across policies, heterogeneous fleets, preemption, and prefix reuse.

use std::collections::VecDeque;
use std::sync::Mutex;

use crate::arrival::Workload;
use crate::parallel::PhaseQueue;
use crate::profile::{DeviceProfile, DeviceRole};
use crate::record::{merge_event_logs, RunTrace, TraceEvent};
use crate::report::{
    DeviceReport, HandoffReport, PoolReport, PreemptReport, PrefixReport, RunTotals, ServeReport,
    StepReport,
};
use crate::request::{PrefixId, Request, SharedPrefix};
use crate::scheduler::Scheduler;
use crate::sim::{DeviceSim, ServeConfigError, ServeSim};
use crate::CLOCK_HZ;

/// How the fleet front-end assigns an arriving request to a device.
///
/// All policies are deterministic; ties break toward the lowest device
/// index. Each policy is a ready-made [`Router`] (see
/// [`DispatchPolicy::router`]); custom routing plugs in through
/// [`ServeSim::run_fleet_with_router`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DispatchPolicy {
    /// Cycle through devices in index order, ignoring load — the
    /// baseline that a load-aware policy must beat on skewed traffic.
    RoundRobin,
    /// Join shortest queue: pick the device with the fewest queued tokens
    /// (pending prompts and decodes plus unfinished admitted/suspended
    /// work) — see [`DeviceView::queued_tokens`]. Load-aware but
    /// throughput-blind: on a mixed-generation fleet it parks as much
    /// work on the slow device as on the fast one.
    JoinShortestQueue,
    /// Pick the device whose KV pool has the smallest reserved fraction —
    /// balances *memory* pressure rather than compute backlog, which
    /// matters when long-context requests dominate the pool.
    LeastLoadedPool,
    /// Weighted join-shortest-queue: pick the device minimizing
    /// `queued_tokens / throughput` ([`DeviceView::weighted_queue`]), so
    /// backlog is measured in the device's *time to drain* rather than
    /// raw tokens. On a uniform fleet this coincides with
    /// [`DispatchPolicy::JoinShortestQueue`]; on a heterogeneous one it
    /// keeps the fast generation fed.
    WeightedJsq,
    /// Prefix-affinity routing: send a request carrying a
    /// [`crate::SharedPrefix`] to the device already holding the longest
    /// matching resident prefix (ties by weighted queue, then lowest
    /// index); requests without a prefix — or whose prefix no device
    /// holds — fall back to [`DispatchPolicy::WeightedJsq`].
    PrefixAffinity,
}

impl DispatchPolicy {
    /// Short display label used in reports.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            DispatchPolicy::RoundRobin => "rr",
            DispatchPolicy::JoinShortestQueue => "jsq",
            DispatchPolicy::LeastLoadedPool => "llp",
            DispatchPolicy::WeightedJsq => "wjsq",
            DispatchPolicy::PrefixAffinity => "prefix",
        }
    }

    /// A fresh stateful [`Router`] implementing this policy.
    #[must_use]
    pub fn router(&self) -> PolicyRouter {
        PolicyRouter::new(*self)
    }

    /// Every dispatch policy, for sweeps.
    pub const ALL: [DispatchPolicy; 5] = [
        DispatchPolicy::RoundRobin,
        DispatchPolicy::JoinShortestQueue,
        DispatchPolicy::LeastLoadedPool,
        DispatchPolicy::WeightedJsq,
        DispatchPolicy::PrefixAffinity,
    ];
}

/// One device's state as the router sees it at dispatch time: backlog,
/// pool pressure, profile throughput, and which shared prefixes its pool
/// holds resident.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceView {
    /// Device index within the fleet.
    pub device: usize,
    /// Remaining work queued on the device, in tokens (pending prompts
    /// and decodes plus unfinished admitted/suspended work).
    pub queued_tokens: u64,
    /// The device's KV-pool byte budget.
    pub pool_budget_bytes: u64,
    /// Bytes currently reserved in the device's KV pool.
    pub pool_reserved_bytes: u64,
    /// The device profile's relative throughput weight.
    pub throughput: f64,
    /// Shared prefixes resident in the device's pool, as
    /// `(prefix id, prefix tokens)` pairs in id order.
    pub resident_prefixes: Vec<(PrefixId, usize)>,
}

impl DeviceView {
    /// Reserved fraction of the pool budget (1.0 for a zero budget) —
    /// the least-loaded-pool metric.
    #[must_use]
    pub fn pool_load(&self) -> f64 {
        if self.pool_budget_bytes == 0 {
            return 1.0;
        }
        self.pool_reserved_bytes as f64 / self.pool_budget_bytes as f64
    }

    /// Queued tokens normalized by the profile throughput — the
    /// weighted-JSQ metric (an estimate of the device's time to drain its
    /// backlog, in arbitrary but fleet-consistent units).
    #[must_use]
    pub fn weighted_queue(&self) -> f64 {
        self.queued_tokens as f64 / self.throughput
    }

    /// Tokens of `prefix` this device already holds resident (0 when the
    /// prefix is absent) — the prefix-affinity metric.
    #[must_use]
    pub fn matching_prefix_tokens(&self, prefix: &SharedPrefix) -> usize {
        self.resident_prefixes
            .iter()
            .find(|(id, _)| *id == prefix.id)
            .map_or(0, |(_, tokens)| (*tokens).min(prefix.tokens))
    }
}

/// A fleet front-end: assigns each arriving request to one device, given
/// a per-device [`DeviceView`] of the fleet.
///
/// Implementations must be deterministic functions of the observed views
/// (plus internal state) — no randomness, no wall clock — so fleet runs
/// replay exactly. The returned index must be within `fleet.len()` (the
/// driver asserts it).
pub trait Router {
    /// Display name used in reports.
    fn name(&self) -> &str;

    /// Picks the target device for one arriving request.
    fn route(&mut self, request: &Request, fleet: &[DeviceView]) -> usize;
}

/// The built-in stateful router behind each [`DispatchPolicy`].
#[derive(Debug, Clone)]
pub struct PolicyRouter {
    policy: DispatchPolicy,
    rr: usize,
}

impl PolicyRouter {
    /// A fresh router for the given policy.
    #[must_use]
    pub fn new(policy: DispatchPolicy) -> Self {
        PolicyRouter { policy, rr: 0 }
    }
}

/// The device minimizing `queued_tokens / throughput`, ties toward the
/// lowest index.
fn weighted_jsq(fleet: &[DeviceView]) -> usize {
    fleet
        .iter()
        .min_by(|a, b| {
            a.weighted_queue()
                .total_cmp(&b.weighted_queue())
                .then(a.device.cmp(&b.device))
        })
        .expect("non-empty fleet")
        .device
}

impl Router for PolicyRouter {
    fn name(&self) -> &str {
        self.policy.name()
    }

    fn route(&mut self, request: &Request, fleet: &[DeviceView]) -> usize {
        match self.policy {
            DispatchPolicy::RoundRobin => {
                let i = self.rr % fleet.len();
                self.rr += 1;
                i
            }
            DispatchPolicy::JoinShortestQueue => {
                fleet
                    .iter()
                    .min_by_key(|d| (d.queued_tokens, d.device))
                    .expect("non-empty fleet")
                    .device
            }
            DispatchPolicy::LeastLoadedPool => {
                fleet
                    .iter()
                    .min_by(|a, b| {
                        a.pool_load()
                            .total_cmp(&b.pool_load())
                            .then(a.device.cmp(&b.device))
                    })
                    .expect("non-empty fleet")
                    .device
            }
            DispatchPolicy::WeightedJsq => weighted_jsq(fleet),
            DispatchPolicy::PrefixAffinity => {
                let holder = request.prefix.as_ref().and_then(|p| {
                    fleet
                        .iter()
                        .filter(|d| d.matching_prefix_tokens(p) > 0)
                        // Longest match first; then shortest weighted
                        // queue; then lowest index.
                        .max_by(|a, b| {
                            a.matching_prefix_tokens(p)
                                .cmp(&b.matching_prefix_tokens(p))
                                .then(
                                    b.weighted_queue()
                                        .total_cmp(&a.weighted_queue())
                                        .then(b.device.cmp(&a.device)),
                                )
                        })
                        .map(|d| d.device)
                });
                holder.unwrap_or_else(|| weighted_jsq(fleet))
            }
        }
    }
}

impl<'a> ServeSim<'a> {
    /// Runs one workload across `devices` identical devices under the
    /// given dispatch policy — the classic uniform fleet, equivalent to
    /// [`ServeSim::run_fleet_profiles`] with `devices` copies of
    /// [`DeviceProfile::uniform`]. Every device gets its own KV pool
    /// (budgeted per
    /// [`ServeConfig::kv_budget_bytes`](crate::ServeConfig::kv_budget_bytes)),
    /// its own scheduler from `make_scheduler`, and its own clock; the
    /// merged [`ServeReport`] carries a per-device breakdown in
    /// [`ServeReport::devices`].
    ///
    /// ```
    /// use mcbp_model::LlmConfig;
    /// use mcbp_serve::{
    ///     ArrivalProcess, ContinuousBatchScheduler, DispatchPolicy, LoadGenerator,
    ///     ServeConfig, ServeSim,
    /// };
    /// use mcbp_sim::{McbpConfig, McbpSim};
    /// use mcbp_workloads::{SparsityProfile, Task, TraceContext, WeightGenerator};
    ///
    /// let model = LlmConfig::opt1b3();
    /// let gen = WeightGenerator::for_model(&model);
    /// let profile = SparsityProfile::measure(&gen.quantized_sample(32, 256, 1), 4);
    /// let template = TraceContext {
    ///     model, task: Task::cola(), batch: 1,
    ///     weight_profile: profile, attention_keep: 0.3,
    /// };
    /// let mcbp = McbpSim::new(McbpConfig::default());
    /// let sim = ServeSim::new(&mcbp, template, ServeConfig::default());
    /// let workload = LoadGenerator::uniform(
    ///     Task::cola(), 6, ArrivalProcess::ClosedLoop { concurrency: 6 },
    /// ).generate();
    /// let report = sim.run_fleet(
    ///     &workload, 2, DispatchPolicy::JoinShortestQueue,
    ///     &mut || Box::new(ContinuousBatchScheduler::new()),
    /// );
    /// assert_eq!(report.completed, 6);
    /// assert_eq!(report.devices.len(), 2);
    /// let dispatched: usize = report.devices.iter().map(|d| d.dispatched).sum();
    /// assert_eq!(dispatched, 6);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics on a zero device count, an invalid workload, internal
    /// accounting violations, or a scheduler contract violation.
    #[must_use]
    pub fn run_fleet(
        &self,
        workload: &Workload,
        devices: usize,
        policy: DispatchPolicy,
        make_scheduler: &mut dyn FnMut() -> Box<dyn Scheduler>,
    ) -> ServeReport {
        let profiles = vec![DeviceProfile::uniform(); devices];
        self.run_fleet_profiles(workload, &profiles, policy, make_scheduler)
    }

    /// Runs one workload across a fleet described by per-device
    /// [`DeviceProfile`]s under a built-in dispatch policy. A fleet of
    /// [`DeviceProfile::uniform`] profiles is bit-exact with
    /// [`ServeSim::run_fleet`].
    ///
    /// # Panics
    ///
    /// Panics where [`ServeSim::try_run_fleet_profiles`] would return an
    /// error, and on internal accounting or scheduler contract violations.
    #[must_use]
    pub fn run_fleet_profiles(
        &self,
        workload: &Workload,
        profiles: &[DeviceProfile<'a>],
        policy: DispatchPolicy,
        make_scheduler: &mut dyn FnMut() -> Box<dyn Scheduler>,
    ) -> ServeReport {
        match self.try_run_fleet_profiles(workload, profiles, policy, make_scheduler) {
            Ok(report) => report,
            Err(e) => panic!("invalid fleet run: {e}"),
        }
    }

    /// Like [`ServeSim::run_fleet_profiles`], but rejects an invalid
    /// fleet or workload with a typed error instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`ServeConfigError::EmptyFleet`],
    /// [`ServeConfigError::ZeroThroughputProfile`], or
    /// [`ServeConfigError::PrefixExceedsPrompt`].
    pub fn try_run_fleet_profiles(
        &self,
        workload: &Workload,
        profiles: &[DeviceProfile<'a>],
        policy: DispatchPolicy,
        make_scheduler: &mut dyn FnMut() -> Box<dyn Scheduler>,
    ) -> Result<ServeReport, ServeConfigError> {
        let mut router = policy.router();
        self.try_run_fleet_with_router(workload, profiles, &mut router, make_scheduler)
    }

    /// Like [`ServeSim::run_fleet_profiles`], but additionally records
    /// the fleet run's full arrival/admission/schedule/preemption history
    /// (see [`crate::RunTrace`]). The traced run is bit-exact with the
    /// untraced one, and replaying the returned trace's workload under
    /// the same fleet/policy/scheduler reproduces the report bit-exactly.
    ///
    /// # Panics
    ///
    /// Panics where [`ServeSim::run_fleet_profiles`] would.
    #[must_use]
    pub fn run_fleet_profiles_traced(
        &self,
        workload: &Workload,
        profiles: &[DeviceProfile<'a>],
        policy: DispatchPolicy,
        make_scheduler: &mut dyn FnMut() -> Box<dyn Scheduler>,
    ) -> (ServeReport, RunTrace) {
        match self.try_run_fleet_profiles_traced(workload, profiles, policy, make_scheduler) {
            Ok(out) => out,
            Err(e) => panic!("invalid fleet run: {e}"),
        }
    }

    /// Like [`ServeSim::run_fleet_profiles_traced`], but rejects an
    /// invalid fleet or workload with a typed error instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns the errors [`ServeSim::try_run_fleet_profiles`] would.
    pub fn try_run_fleet_profiles_traced(
        &self,
        workload: &Workload,
        profiles: &[DeviceProfile<'a>],
        policy: DispatchPolicy,
        make_scheduler: &mut dyn FnMut() -> Box<dyn Scheduler>,
    ) -> Result<(ServeReport, RunTrace), ServeConfigError> {
        DeviceProfile::validate_fleet(profiles)?;
        ServeSim::validate_workload(workload)?;
        let mut router = policy.router();
        let mut scheds: Vec<Box<dyn Scheduler>> =
            (0..profiles.len()).map(|_| make_scheduler()).collect();
        let mut refs: Vec<&mut dyn Scheduler> =
            scheds.iter_mut().map(|s| s.as_mut() as _).collect();
        let (report, trace) = drive(self, workload, &mut refs, profiles, &mut router, true);
        Ok((report, trace.expect("tracing was requested")))
    }

    /// Runs one workload across a profiled fleet under a **custom**
    /// [`Router`].
    ///
    /// # Panics
    ///
    /// Panics where [`ServeSim::try_run_fleet_with_router`] would return
    /// an error, and on internal accounting or scheduler contract
    /// violations.
    #[must_use]
    pub fn run_fleet_with_router(
        &self,
        workload: &Workload,
        profiles: &[DeviceProfile<'a>],
        router: &mut dyn Router,
        make_scheduler: &mut dyn FnMut() -> Box<dyn Scheduler>,
    ) -> ServeReport {
        match self.try_run_fleet_with_router(workload, profiles, router, make_scheduler) {
            Ok(report) => report,
            Err(e) => panic!("invalid fleet run: {e}"),
        }
    }

    /// Like [`ServeSim::run_fleet_with_router`], but rejects an invalid
    /// fleet or workload with a typed error instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`ServeConfigError::EmptyFleet`],
    /// [`ServeConfigError::ZeroThroughputProfile`], or
    /// [`ServeConfigError::PrefixExceedsPrompt`].
    pub fn try_run_fleet_with_router(
        &self,
        workload: &Workload,
        profiles: &[DeviceProfile<'a>],
        router: &mut dyn Router,
        make_scheduler: &mut dyn FnMut() -> Box<dyn Scheduler>,
    ) -> Result<ServeReport, ServeConfigError> {
        DeviceProfile::validate_fleet(profiles)?;
        ServeSim::validate_workload(workload)?;
        let mut scheds: Vec<Box<dyn Scheduler>> =
            (0..profiles.len()).map(|_| make_scheduler()).collect();
        let mut refs: Vec<&mut dyn Scheduler> =
            scheds.iter_mut().map(|s| s.as_mut() as _).collect();
        Ok(drive(self, workload, &mut refs, profiles, router, false).0)
    }
}

/// Releases the next closed-loop request (if any) at the given instant —
/// a completion or a drop each vacate exactly one population slot. The
/// released entry is re-inserted in arrival order: fleet devices complete
/// on asynchronous clocks, so release instants are *not* nondecreasing
/// and an in-place write would break the sorted-deque invariant the
/// front-gated dispatch loop relies on.
fn release_next_closed_loop(pending: &mut VecDeque<Request>, now: f64) {
    let Some(idx) = pending.iter().position(|r| r.arrival_cycle.is_infinite()) else {
        return;
    };
    let mut req = pending.remove(idx).expect("index valid");
    req.arrival_cycle = now;
    let pos = pending
        .iter()
        .position(|r| r.arrival_cycle > now)
        .unwrap_or(pending.len());
    pending.insert(pos, req);
}

/// One device's [`DeviceView`] as of its own clock.
fn device_view(i: usize, d: &DeviceSim<'_, '_>) -> DeviceView {
    DeviceView {
        device: i,
        queued_tokens: d.queued_tokens(),
        pool_budget_bytes: d.pool.budget_bytes(),
        pool_reserved_bytes: d.pool.reserved_bytes(),
        throughput: d.throughput(),
        resident_prefixes: d
            .pool
            .resident_prefixes()
            .into_iter()
            .map(|(id, e)| (id, e.tokens))
            .collect(),
    }
}

/// One [`DeviceView`] per device, as of each device's own clock.
fn fleet_views(devs: &[DeviceSim<'_, '_>]) -> Vec<DeviceView> {
    devs.iter()
        .enumerate()
        .map(|(i, d)| device_view(i, d))
        .collect()
}

/// The fleet indices eligible for each routing stage, plus whether the
/// fleet is role-specialized at all (when it is not, the drives use the
/// exact single-stage code paths — bit-exactness with all-`Unified`
/// fleets by construction).
struct StagePlan {
    prefill: Vec<usize>,
    decode: Vec<usize>,
    specialized: bool,
}

impl StagePlan {
    fn new(profiles: &[DeviceProfile<'_>]) -> Self {
        let prefill: Vec<usize> = profiles
            .iter()
            .enumerate()
            .filter(|(_, p)| p.role.can_prefill())
            .map(|(i, _)| i)
            .collect();
        let decode: Vec<usize> = profiles
            .iter()
            .enumerate()
            .filter(|(_, p)| p.role.can_decode())
            .map(|(i, _)| i)
            .collect();
        let specialized = prefill.len() < profiles.len() || decode.len() < profiles.len();
        StagePlan {
            prefill,
            decode,
            specialized,
        }
    }
}

/// Routes one request over the candidate subset `set` (ascending fleet
/// indices). The candidate views are renumbered to contiguous positions
/// so position-based policies (round-robin) and identity-based ones (the
/// JSQ family) both pick within the subset; preserving ascending order
/// keeps the "lowest index" tie-break intact. Returns the fleet index.
fn route_among(
    router: &mut dyn Router,
    req: &Request,
    set: &[usize],
    mut view_of: impl FnMut(usize) -> DeviceView,
) -> usize {
    let views: Vec<DeviceView> = set
        .iter()
        .enumerate()
        .map(|(pos, &i)| DeviceView {
            device: pos,
            ..view_of(i)
        })
        .collect();
    let pick = router.route(req, &views);
    assert!(
        pick < set.len(),
        "router `{}` picked candidate {pick} of {}",
        router.name(),
        set.len()
    );
    set[pick]
}

/// Stage-2 routing: drains every device's finished prefills in device
/// index order (then emission order), routes each over the
/// decode-capable devices, books the transfer on the source's link and
/// the destination's ledger, and logs the hop. Returns how many handoffs
/// were routed (fixpoint progress).
fn route_handoffs(
    devs: &mut [&mut DeviceSim<'_, '_>],
    router: &mut dyn Router,
    decode_set: &[usize],
    route_log: &mut Vec<TraceEvent>,
    trace: bool,
) -> usize {
    let mut routed = 0;
    for src in 0..devs.len() {
        for h in devs[src].take_outbound() {
            let target = route_among(router, &h.req, decode_set, |i| device_view(i, devs[i]));
            let cycles = devs[src].handoff_transfer_cycles(h.bytes);
            let arrival = h.ready_cycle + cycles;
            devs[src].note_handoff_out(h.bytes, cycles);
            if trace {
                route_log.push(TraceEvent::Handoff {
                    id: h.req.id,
                    from: src as u32,
                    to: target as u32,
                    cycle: h.ready_cycle,
                    arrival_cycle: arrival,
                    bytes: h.bytes,
                });
            }
            devs[target].receive_handoff(h, arrival);
            routed += 1;
        }
    }
    routed
}

/// The shared drive loop: one scheduler slice and one profile per device.
/// With `trace` set, every device logs its admission/step/preemption
/// events and the router's dispatch decisions are logged here; the merged
/// history — ordered by the explicit `(cycle, device, kind, seq)` key —
/// is returned as the [`RunTrace`]. Observation only: the simulated run
/// itself is bit-exact with an untraced one.
///
/// This is the sequential reference path; with
/// [`ServeConfig::fleet_workers`](crate::ServeConfig::fleet_workers) at
/// two or more it delegates to the bit-exact [`drive_parallel`].
pub(crate) fn drive<'a>(
    sim: &ServeSim<'a>,
    workload: &Workload,
    scheds: &mut [&mut dyn Scheduler],
    profiles: &[DeviceProfile<'a>],
    router: &mut dyn Router,
    trace: bool,
) -> (ServeReport, Option<RunTrace>) {
    let n = scheds.len();
    assert!(n >= 1, "at least one device");
    assert_eq!(n, profiles.len(), "one profile per scheduler slice");
    let workers = sim.config().fleet_workers.unwrap_or(1).min(n);
    if workers >= 2 {
        return drive_parallel(sim, workload, scheds, profiles, router, trace, workers);
    }
    let closed = workload.closed_loop.is_some();
    let plan = StagePlan::new(profiles);
    let name = report_name(scheds, router);
    let mut devs: Vec<DeviceSim<'_, '_>> = profiles
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let mut dev = DeviceSim::new(sim, p);
            dev.device = i as u32;
            dev.log = trace.then(Vec::new);
            dev
        })
        .collect();
    let mut route_log: Vec<TraceEvent> = Vec::new();
    // Kept arrival-sorted (generated workloads already are; sorting here
    // makes hand-built ones safe too, and closed-loop releases re-insert
    // their entry at its sorted position).
    let mut pending: VecDeque<Request> = workload.requests.clone().into();
    pending
        .make_contiguous()
        .sort_by(|a, b| a.arrival_cycle.total_cmp(&b.arrival_cycle));

    loop {
        // ---- admission + dispatch, to a fixpoint ----
        loop {
            let mut progress = false;
            for dev in &mut devs {
                let drops = dev.admit();
                if drops > 0 {
                    progress = true;
                    if closed {
                        for _ in 0..drops {
                            release_next_closed_loop(&mut pending, dev.now);
                        }
                    }
                }
            }
            // Stage-2: route finished prefills onto decode devices (the
            // admissions above and the step below both produce them).
            if plan.specialized {
                let mut refs: Vec<&mut DeviceSim<'_, '_>> = devs.iter_mut().collect();
                if route_handoffs(&mut refs, router, &plan.decode, &mut route_log, trace) > 0 {
                    progress = true;
                }
            }
            // Dispatch every arrival due at or before the earliest busy
            // device clock; with the whole fleet idle the next arrival is
            // due immediately (its device fast-forwards to it).
            while let Some(head) = pending.front() {
                if !head.arrival_cycle.is_finite() {
                    break;
                }
                let min_busy = devs
                    .iter()
                    .filter(|d| d.has_active())
                    .map(|d| d.now)
                    .min_by(f64::total_cmp);
                if min_busy.is_some_and(|clock| head.arrival_cycle > clock) {
                    break;
                }
                let req = pending.pop_front().expect("head exists");
                let target = if plan.specialized {
                    // Stage-1: prompts route over prefill-capable
                    // devices only.
                    route_among(router, &req, &plan.prefill, |i| device_view(i, &devs[i]))
                } else {
                    let views = fleet_views(&devs);
                    let target = router.route(&req, &views);
                    assert!(
                        target < n,
                        "router `{}` picked device {target} of {n}",
                        router.name()
                    );
                    target
                };
                if trace {
                    route_log.push(TraceEvent::Route {
                        id: req.id,
                        device: target as u32,
                        cycle: req.arrival_cycle,
                    });
                }
                devs[target].enqueue(req);
                let drops = devs[target].admit();
                if closed && drops > 0 {
                    let t = devs[target].now;
                    for _ in 0..drops {
                        release_next_closed_loop(&mut pending, t);
                    }
                }
                progress = true;
            }
            if !progress {
                break;
            }
        }

        // ---- step the busy device with the earliest clock ----
        let Some(i) = (0..n)
            .filter(|&i| devs[i].has_active())
            .min_by(|&a, &b| devs[a].now.total_cmp(&devs[b].now))
        else {
            break; // drained (closed-loop leftovers can never release)
        };
        let completions = devs[i].step(scheds[i]);
        if closed && completions > 0 {
            let t = devs[i].now;
            for _ in 0..completions {
                release_next_closed_loop(&mut pending, t);
            }
        }
    }
    debug_assert!(
        devs.iter().all(DeviceSim::is_drained),
        "driver exited with undone device work"
    );
    merge_fleet(workload, devs, route_log, name, trace)
}

/// Display name of a fleet run's report.
fn report_name(scheds: &[&mut dyn Scheduler], router: &dyn Router) -> String {
    if scheds.len() == 1 {
        scheds[0].name().to_owned()
    } else {
        format!("{} [{}x {}]", scheds[0].name(), scheds.len(), router.name())
    }
}

/// The maximum number of simultaneously admitted, incomplete requests
/// across the fleet: a sweep over every device's admission (`+1`) and
/// departure (`-1`) deltas on the shared clock. Departures sort before
/// admissions at the same instant, so back-to-back turnover at one cycle
/// does not read as overlap (admission intervals are half-open). That
/// convention lets `live` dip negative *within* a cycle group — a
/// request admitted and evicted (or extracted) in the same admission
/// pass has its `-1` sorted ahead of its own `+1`, correctly
/// contributing zero occupancy — so non-negativity is asserted only at
/// group boundaries, where every departure's admission has been
/// counted. The sweep is order-independent across devices — it depends
/// only on the union of the per-device delta logs — which keeps it
/// identical between the sequential and parallel drives.
fn fleet_peak_concurrency(logs: &[&[(f64, i32)]]) -> usize {
    let mut deltas: Vec<(f64, i32)> = logs.iter().flat_map(|l| l.iter().copied()).collect();
    deltas.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    let mut live: i64 = 0;
    let mut peak: i64 = 0;
    let mut prev_cycle = f64::NEG_INFINITY;
    for (cycle, delta) in deltas {
        if cycle > prev_cycle {
            debug_assert!(
                live >= 0,
                "fleet concurrency sweep negative at cycle boundary {cycle}"
            );
            prev_cycle = cycle;
        }
        live += i64::from(delta);
        peak = peak.max(live);
    }
    debug_assert!(live >= 0, "fleet concurrency sweep ended negative");
    usize::try_from(peak).expect("peak is non-negative")
}

/// The parallel fleet drive behind
/// [`ServeConfig::fleet_workers`](crate::ServeConfig::fleet_workers):
/// the same dispatch fixpoint as [`drive`], with the inter-dispatch
/// device stepping executed by a pool of scoped worker threads (see the
/// module docs for the independence argument). Bit-exact with the
/// sequential drive for any worker count.
fn drive_parallel<'a>(
    sim: &ServeSim<'a>,
    workload: &Workload,
    scheds: &mut [&mut dyn Scheduler],
    profiles: &[DeviceProfile<'a>],
    router: &mut dyn Router,
    trace: bool,
    workers: usize,
) -> (ServeReport, Option<RunTrace>) {
    let n = scheds.len();
    debug_assert!(workers >= 2 && workers <= n);
    let closed = workload.closed_loop.is_some();
    let plan = StagePlan::new(profiles);
    let prefill_role: Vec<bool> = profiles
        .iter()
        .map(|p| p.role == DeviceRole::Prefill)
        .collect();
    let name = report_name(scheds, router);
    let devs: Vec<DeviceSim<'_, '_>> = profiles
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let mut dev = DeviceSim::new(sim, p);
            dev.device = i as u32;
            dev.log = trace.then(Vec::new);
            dev
        })
        .collect();
    let mut route_log: Vec<TraceEvent> = Vec::new();
    let mut pending: VecDeque<Request> = workload.requests.clone().into();
    pending
        .make_contiguous()
        .sort_by(|a, b| a.arrival_cycle.total_cmp(&b.arrival_cycle));

    // One slot per device: the device plus its scheduler, behind a mutex
    // so the borrow checker proves worker/coordinator exclusivity. The
    // phase barrier already guarantees it — the coordinator only touches
    // slots while workers are parked — so the locks never contend.
    let queue = PhaseQueue::new();
    let cells: Vec<Mutex<_>> = devs
        .into_iter()
        .zip(scheds.iter_mut().map(|s| &mut **s))
        .map(Mutex::new)
        .collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                while let Some((slot, horizon)) = queue.claim() {
                    {
                        let mut cell = cells[slot].lock().expect("fleet slot poisoned");
                        let (dev, sched) = &mut *cell;
                        dev.run_until(horizon, &mut **sched);
                    }
                    queue.complete();
                }
            });
        }
        loop {
            let mut slots: Vec<_> = cells
                .iter()
                .map(|c| c.lock().expect("fleet slot poisoned"))
                .collect();
            // ---- admission + dispatch, to a fixpoint (mirrors `drive`) ----
            loop {
                let mut progress = false;
                for slot in slots.iter_mut() {
                    let drops = slot.0.admit();
                    if drops > 0 {
                        progress = true;
                        if closed {
                            for _ in 0..drops {
                                release_next_closed_loop(&mut pending, slot.0.now);
                            }
                        }
                    }
                }
                // Stage-2: route finished prefills (mirrors `drive`).
                if plan.specialized {
                    let mut refs: Vec<&mut DeviceSim<'_, '_>> =
                        slots.iter_mut().map(|s| &mut s.0).collect();
                    if route_handoffs(&mut refs, router, &plan.decode, &mut route_log, trace) > 0 {
                        progress = true;
                    }
                }
                while let Some(head) = pending.front() {
                    if !head.arrival_cycle.is_finite() {
                        break;
                    }
                    let min_busy = slots
                        .iter()
                        .filter(|s| s.0.has_active())
                        .map(|s| s.0.now)
                        .min_by(f64::total_cmp);
                    if min_busy.is_some_and(|clock| head.arrival_cycle > clock) {
                        break;
                    }
                    let req = pending.pop_front().expect("head exists");
                    let target = if plan.specialized {
                        // Stage-1: prompts route over prefill-capable
                        // devices only.
                        route_among(router, &req, &plan.prefill, |i| device_view(i, &slots[i].0))
                    } else {
                        let views: Vec<DeviceView> = slots
                            .iter()
                            .enumerate()
                            .map(|(i, s)| device_view(i, &s.0))
                            .collect();
                        let target = router.route(&req, &views);
                        assert!(
                            target < n,
                            "router `{}` picked device {target} of {n}",
                            router.name()
                        );
                        target
                    };
                    if trace {
                        route_log.push(TraceEvent::Route {
                            id: req.id,
                            device: target as u32,
                            cycle: req.arrival_cycle,
                        });
                    }
                    slots[target].0.enqueue(req);
                    let drops = slots[target].0.admit();
                    if closed && drops > 0 {
                        let t = slots[target].0.now;
                        for _ in 0..drops {
                            release_next_closed_loop(&mut pending, t);
                        }
                    }
                    progress = true;
                }
                if !progress {
                    break;
                }
            }

            let slots_unreleased = closed && pending.iter().any(|r| r.arrival_cycle.is_infinite());
            // A busy `Prefill`-role device could produce a handoff — a
            // cross-device coupling the phase horizon cannot see — so the
            // drive serializes until the prefill pool is quiescent (see
            // the module docs' handoff independence argument).
            let prefill_busy =
                plan.specialized && (0..n).any(|i| prefill_role[i] && slots[i].0.has_active());
            if slots_unreleased || prefill_busy {
                // Unreleased population slots remain (a completion on any
                // device feeds the global dispatcher) or a handoff could
                // be produced, so devices are not independent yet. Step
                // exactly as the sequential loop does — earliest clock
                // first, releases after the step.
                let Some(i) = (0..n)
                    .filter(|&i| slots[i].0.has_active())
                    .min_by(|&a, &b| slots[a].0.now.total_cmp(&slots[b].0.now))
                else {
                    break; // drained (leftover slots can never release)
                };
                let slot = &mut *slots[i];
                let completions = slot.0.step(&mut *slot.1);
                if closed && completions > 0 {
                    let t = slot.0.now;
                    for _ in 0..completions {
                        release_next_closed_loop(&mut pending, t);
                    }
                }
                continue;
            }

            // ---- parallel phase: drive every busy device below the next
            // dispatch horizon up to it ----
            let horizon = pending.front().map_or(f64::INFINITY, |r| r.arrival_cycle);
            let jobs: Vec<usize> = (0..n)
                .filter(|&i| slots[i].0.has_active() && slots[i].0.now < horizon)
                .collect();
            if jobs.is_empty() {
                // Drained: after the fixpoint a finite pending head
                // implies a busy device with an earlier clock.
                break;
            }
            drop(slots);
            queue.run_phase(jobs, horizon);
        }
        queue.shutdown();
    });

    let devs: Vec<DeviceSim<'_, '_>> = cells
        .into_iter()
        .map(|c| c.into_inner().expect("fleet slot poisoned").0)
        .collect();
    debug_assert!(
        devs.iter().all(DeviceSim::is_drained),
        "parallel driver exited with undone device work"
    );
    merge_fleet(workload, devs, route_log, name, trace)
}

/// Merges drained per-device simulations into the fleet [`ServeReport`]
/// (and, when tracing, the [`RunTrace`]). Shared by the sequential and
/// parallel drives: every aggregate is either accumulated in device
/// index order, computed by an order-independent sweep, or sorted by an
/// explicit total order, so identical per-device end states merge into
/// bit-identical reports regardless of how the devices were driven.
fn merge_fleet(
    workload: &Workload,
    mut devs: Vec<DeviceSim<'_, '_>>,
    route_log: Vec<TraceEvent>,
    name: String,
    trace: bool,
) -> (ServeReport, Option<RunTrace>) {
    let n = devs.len();
    let duration_cycles = devs.iter().map(|d| d.now).fold(0.0, f64::max);
    let span_s = (duration_cycles / CLOCK_HZ).max(1e-12);
    // The fleet peak is the true simultaneous maximum, not a sum of
    // per-device peaks reached at different local instants.
    let conc_logs: Vec<&[(f64, i32)]> = devs.iter().map(|d| d.conc_log.as_slice()).collect();
    let peak_concurrency = fleet_peak_concurrency(&conc_logs);
    let mut device_logs: Vec<Vec<TraceEvent>> = Vec::new();
    let mut records = Vec::new();
    let mut lanes = Vec::new();
    let mut pool = PoolReport::default();
    let mut preempt = PreemptReport::default();
    let mut handoff = HandoffReport::default();
    let mut steps = StepReport::default();
    let mut prefix = PrefixReport::default();
    let mut energy_pj = 0.0;
    let mut decode_invocations = 0u64;
    let mut decode_streams = 0u64;
    for (i, d) in devs.iter_mut().enumerate() {
        let lane_pool = d.pool_report();
        let lane_preempt = d.preempt_report();
        let lane_handoff = d.handoff_report();
        let lane_steps = d.step_report();
        let lane_prefix = d.prefix_report();
        let completed = d.records.iter().filter(|r| r.completed()).count();
        let tokens: usize = d
            .records
            .iter()
            .filter(|r| r.completed())
            .map(|r| r.tokens)
            .sum();
        lanes.push(DeviceReport {
            device: i,
            dispatched: d.dispatched,
            completed,
            dropped: d.records.len() - completed,
            goodput_tokens_per_s: tokens as f64 / span_s,
            utilization: if duration_cycles > 0.0 {
                d.busy_cycles() / duration_cycles
            } else {
                0.0
            },
            energy_joules: d.energy_pj * 1e-12,
            pool: lane_pool,
            preempt: lane_preempt,
            handoff: lane_handoff,
            steps: lane_steps,
            prefix: lane_prefix,
        });
        // Fleet aggregates: budgets and stalls add; the byte peaks are
        // per-device maxima taken at different local instants, so their
        // sum is an upper bound on any fleet-wide simultaneous figure.
        // Means are weighted onto the fleet span by each device's *busy*
        // span: a device that drained early — or whose clock merely
        // idled forward waiting for arrivals — held nothing resident in
        // those windows and must not count as if it did.
        pool.budget_bytes += lane_pool.budget_bytes;
        pool.peak_resident_bytes += lane_pool.peak_resident_bytes;
        pool.peak_reserved_bytes += lane_pool.peak_reserved_bytes;
        if duration_cycles > 0.0 {
            pool.mean_resident_bytes +=
                lane_pool.mean_resident_bytes * d.pool.busy_span_cycles() / duration_cycles;
        }
        pool.busy_span_seconds += lane_pool.busy_span_seconds;
        pool.admission_stall_seconds += lane_pool.admission_stall_seconds;
        preempt.preemptions += lane_preempt.preemptions;
        preempt.swap_out_bytes += lane_preempt.swap_out_bytes;
        preempt.swap_in_bytes += lane_preempt.swap_in_bytes;
        preempt.swap_seconds += lane_preempt.swap_seconds;
        preempt.recompute_seconds += lane_preempt.recompute_seconds;
        preempt.peak_swap_held_bytes += lane_preempt.peak_swap_held_bytes;
        // Handoff sums: out lanes live on source devices, in lanes on
        // destinations; across a drained fleet `bytes_out == bytes_in`
        // (the in-flight peak is a per-device maximum like the others).
        handoff.handoffs_out += lane_handoff.handoffs_out;
        handoff.handoffs_in += lane_handoff.handoffs_in;
        handoff.bytes_out += lane_handoff.bytes_out;
        handoff.bytes_in += lane_handoff.bytes_in;
        handoff.link_seconds += lane_handoff.link_seconds;
        handoff.peak_in_flight_bytes += lane_handoff.peak_in_flight_bytes;
        // Step counts add; the budget utilization is each device's mean
        // weighted by its step count (renormalized below).
        steps.steps += lane_steps.steps;
        steps.prefill_steps += lane_steps.prefill_steps;
        steps.decode_steps += lane_steps.decode_steps;
        steps.mixed_steps += lane_steps.mixed_steps;
        steps.mean_budget_utilization +=
            lane_steps.mean_budget_utilization * lane_steps.steps as f64;
        prefix.hits += lane_prefix.hits;
        prefix.misses += lane_prefix.misses;
        prefix.reused_tokens += lane_prefix.reused_tokens;
        prefix.reclaimed += lane_prefix.reclaimed;
        prefix.reclaimed_bytes += lane_prefix.reclaimed_bytes;
        energy_pj += d.energy_pj;
        decode_invocations += d.decode_invocations;
        decode_streams += d.decode_streams;
        if let Some(log) = d.log.take() {
            device_logs.push(log);
        }
        records.append(&mut d.records);
    }
    records.sort_by_key(|r| r.request.id);
    if steps.steps > 0 {
        steps.mean_budget_utilization /= steps.steps as f64;
    }
    let mean_decode_batch = if decode_invocations == 0 {
        0.0
    } else {
        decode_streams as f64 / decode_invocations as f64
    };
    let report = ServeReport::summarize(
        name,
        records,
        RunTotals {
            duration_cycles,
            mean_decode_batch,
            peak_concurrency,
            energy_pj,
            offered_rps: workload.offered_rps(),
            preempt,
            handoff,
            steps,
            prefix,
        },
        pool,
        lanes,
    );
    let run_trace = trace.then(|| {
        // Merge the route log and the per-device logs (each individually
        // in emission order) by the explicit `(cycle, device, kind, seq)`
        // total order — nothing depends on sort stability or on the
        // order the logs are handed over in.
        let mut logs = Vec::with_capacity(device_logs.len() + 1);
        logs.push(route_log);
        logs.append(&mut device_logs);
        RunTrace {
            workload: workload.clone(),
            devices: n as u32,
            events: merge_event_logs(logs),
        }
    });
    (report, run_trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::Request;
    use mcbp_workloads::Task;

    #[test]
    fn out_of_order_releases_keep_the_pending_deque_sorted() {
        // Fleet devices complete on asynchronous clocks, so release
        // instants arrive out of order; each release must land at its
        // sorted position, not at the front of the infinite tail.
        let mut pending: VecDeque<Request> = (0..3)
            .map(|i| Request::from_task(i, &Task::cola(), f64::INFINITY))
            .collect();
        release_next_closed_loop(&mut pending, 110.0);
        release_next_closed_loop(&mut pending, 105.0);
        let arrivals: Vec<f64> = pending.iter().map(|r| r.arrival_cycle).collect();
        assert_eq!(arrivals[..2], [105.0, 110.0]);
        assert!(arrivals[2].is_infinite());
        // An early release sorts ahead of the finite entries; once no
        // infinite entry remains, further releases are no-ops.
        release_next_closed_loop(&mut pending, 1.0);
        release_next_closed_loop(&mut pending, 120.0);
        assert_eq!(pending.len(), 3);
        let arrivals: Vec<f64> = pending.iter().map(|r| r.arrival_cycle).collect();
        assert_eq!(arrivals, [1.0, 105.0, 110.0]);
    }

    /// A hand-built fleet view for router unit tests.
    fn view(device: usize, queued: u64, reserved: u64, throughput: f64) -> DeviceView {
        DeviceView {
            device,
            queued_tokens: queued,
            pool_budget_bytes: 1_000,
            pool_reserved_bytes: reserved,
            throughput,
            resident_prefixes: Vec::new(),
        }
    }

    fn request() -> Request {
        Request::from_task(0, &Task::cola(), 0.0)
    }

    /// Exactly tied devices must deterministically dispatch to the lowest
    /// device id under every load-aware policy, so fleet runs replay
    /// identically across platforms (no dependence on iteration order or
    /// float comparison quirks). Extends the PR 4 tie-break regression to
    /// the weighted-JSQ and prefix-affinity routers.
    #[test]
    fn tied_devices_break_toward_the_lowest_id() {
        let fresh = || vec![view(0, 0, 0, 1.0), view(1, 0, 0, 1.0), view(2, 0, 0, 1.0)];
        for policy in [
            DispatchPolicy::JoinShortestQueue,
            DispatchPolicy::LeastLoadedPool,
            DispatchPolicy::WeightedJsq,
            DispatchPolicy::PrefixAffinity,
        ] {
            let mut router = policy.router();
            assert_eq!(router.route(&request(), &fresh()), 0, "{policy:?}");
        }
        // Load device 0; JSQ-family policies now prefer the still-empty
        // device 1, and a 1-vs-2 tie again breaks toward the lower id.
        let loaded = vec![
            view(0, 64, 100, 1.0),
            view(1, 0, 0, 1.0),
            view(2, 0, 0, 1.0),
        ];
        for policy in [
            DispatchPolicy::JoinShortestQueue,
            DispatchPolicy::LeastLoadedPool,
            DispatchPolicy::WeightedJsq,
            DispatchPolicy::PrefixAffinity,
        ] {
            let mut router = policy.router();
            assert_eq!(router.route(&request(), &loaded), 1, "{policy:?}");
        }
        // Weighted ties at *different* raw queue lengths: 100 tokens at
        // throughput 2.0 equals 50 tokens at throughput 1.0 — the tie
        // still breaks to the lowest id, not the rawest queue.
        let weighted_tie = vec![view(0, 100, 0, 2.0), view(1, 50, 0, 1.0)];
        let mut router = DispatchPolicy::WeightedJsq.router();
        assert_eq!(router.route(&request(), &weighted_tie), 0);
    }

    /// Pins the fleet-peak semantics: the peak is the maximum number of
    /// requests *simultaneously* in flight across the fleet, not a sum
    /// of per-device peaks reached at different instants, and a
    /// departure and an admission at the same cycle do not overlap
    /// (half-open intervals). The sweep must also be independent of the
    /// order devices are listed in, since the parallel drive steps them
    /// in nondeterministic wall-clock order.
    #[test]
    fn fleet_peak_concurrency_is_simultaneous_not_summed() {
        // Two devices, each peaking at 1, in disjoint windows: the old
        // per-device sum reported 2; the true simultaneous peak is 1.
        let d0: &[(f64, i32)] = &[(0.0, 1), (10.0, -1)];
        let d1: &[(f64, i32)] = &[(20.0, 1), (30.0, -1)];
        assert_eq!(fleet_peak_concurrency(&[d0, d1]), 1);
        // Back-to-back turnover at one cycle: d1 admits exactly when d0
        // retires — still no overlap.
        let d1_touching: &[(f64, i32)] = &[(10.0, 1), (30.0, -1)];
        assert_eq!(fleet_peak_concurrency(&[d0, d1_touching]), 1);
        // Genuine overlap across devices is counted...
        let d1_overlap: &[(f64, i32)] = &[(5.0, 1), (30.0, -1)];
        assert_eq!(fleet_peak_concurrency(&[d0, d1_overlap]), 2);
        // ...and the result is order-independent and empty-safe.
        assert_eq!(fleet_peak_concurrency(&[d1_overlap, d0]), 2);
        assert_eq!(fleet_peak_concurrency(&[]), 0);
        // Within one device the sweep reproduces the running maximum the
        // per-device sampled peak used to report, including same-cycle
        // turnover: the third admission lands as the first request
        // retires, so three requests never coexist.
        let busy: &[(f64, i32)] = &[
            (0.0, 1),
            (1.0, 1),
            (2.0, 1),
            (2.0, -1),
            (3.0, -1),
            (4.0, -1),
        ];
        assert_eq!(fleet_peak_concurrency(&[busy]), 2);
        let stacked: &[(f64, i32)] = &[
            (0.0, 1),
            (1.0, 1),
            (2.0, 1),
            (3.0, -1),
            (3.0, -1),
            (4.0, -1),
        ];
        assert_eq!(fleet_peak_concurrency(&[stacked]), 3);
    }

    #[test]
    fn weighted_jsq_normalizes_backlog_by_throughput() {
        // Device 0 holds fewer raw tokens, but at a quarter the
        // throughput its drain time is longer: weighted JSQ picks the
        // fast device where plain JSQ picks the slow one.
        let fleet = vec![view(0, 60, 0, 0.25), view(1, 100, 0, 1.0)];
        assert_eq!(
            DispatchPolicy::JoinShortestQueue
                .router()
                .route(&request(), &fleet),
            0
        );
        assert_eq!(
            DispatchPolicy::WeightedJsq
                .router()
                .route(&request(), &fleet),
            1
        );
    }

    #[test]
    fn prefix_affinity_prefers_the_longest_resident_match() {
        use crate::request::SharedPrefix;
        let mut fleet = vec![
            view(0, 0, 0, 1.0),
            view(1, 500, 0, 1.0),
            view(2, 900, 0, 1.0),
        ];
        fleet[1].resident_prefixes = vec![(7, 2048)];
        fleet[2].resident_prefixes = vec![(7, 2048)];
        let mut router = DispatchPolicy::PrefixAffinity.router();
        // A prefix-carrying request goes to a holder (shortest weighted
        // queue among holders), not to the empty non-holder.
        let req = request().with_prefix(SharedPrefix::new(7, 2048));
        assert_eq!(router.route(&req, &fleet), 1);
        // Equal-queue holders tie toward the lowest id.
        fleet[2].queued_tokens = 500;
        assert_eq!(router.route(&req, &fleet), 1);
        // No holder (different id) → weighted-JSQ fallback.
        let other = request().with_prefix(SharedPrefix::new(9, 2048));
        assert_eq!(router.route(&other, &fleet), 0);
        // No prefix at all → weighted-JSQ fallback.
        assert_eq!(router.route(&request(), &fleet), 0);
    }
}
