use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use mcbp_workloads::Task;

use crate::request::{Priority, Request, SharedPrefix, SloSpec};
use crate::CLOCK_HZ;

/// How requests arrive on the simulated clock. Every process is driven by
/// an explicit seed — there is no wall-clock anywhere in the subsystem, so
/// identical configurations replay identical traces.
#[derive(Debug, Clone, PartialEq)]
pub enum ArrivalProcess {
    /// Closed loop: `concurrency` requests are in flight at all times; a
    /// completion immediately releases the next request (classic
    /// fixed-population load, used for capacity probing).
    ClosedLoop {
        /// In-flight population size.
        concurrency: usize,
    },
    /// Open-loop Poisson arrivals at `rate_rps` requests per second,
    /// exponential inter-arrival times drawn from the seeded RNG.
    Poisson {
        /// Mean arrival rate in requests per second.
        rate_rps: f64,
        /// RNG seed for the inter-arrival draws.
        seed: u64,
    },
    /// On/off modulated Poisson: bursts of `burst_len` back-to-back
    /// arrivals at `burst_factor` × the base rate, separated by quiet
    /// periods that preserve the long-run mean rate — the bursty traffic
    /// regime where continuous batching separates from FCFS.
    Bursty {
        /// Long-run mean arrival rate in requests per second.
        rate_rps: f64,
        /// Rate multiplier inside a burst (> 1).
        burst_factor: f64,
        /// Requests per burst.
        burst_len: usize,
        /// RNG seed for the inter-arrival draws.
        seed: u64,
    },
    /// Sinusoidally modulated Poisson: the instantaneous rate swings
    /// around `rate_rps` as `rate_rps · (1 + amplitude · sin(2πt /
    /// period_s))`, modeling the diurnal peak/trough cycle of real
    /// serving traffic. Each inter-arrival gap is an exponential draw at
    /// the instantaneous rate, so traces span distinct load *phases* —
    /// the structure the SimPoint-style trace sampler clusters on.
    Diurnal {
        /// Mean (mid-swing) arrival rate in requests per second.
        rate_rps: f64,
        /// Relative swing around the mean, in `[0, 1)`: the rate peaks
        /// at `(1 + amplitude) ×` and bottoms out at `(1 - amplitude) ×`
        /// the mean.
        amplitude: f64,
        /// Period of one full rate cycle in seconds (e.g. 86400 for a
        /// true day, shorter for compressed experiments).
        period_s: f64,
        /// RNG seed for the inter-arrival draws.
        seed: u64,
    },
}

/// One slot of a [`LoadGenerator`]'s class mix: the scheduling class and
/// latency objectives stamped onto generated requests. Like the task mix,
/// the class mix cycles round-robin across requests (independently of the
/// task cycle), so e.g. `[interactive, batch, batch, batch]` yields a
/// 1-in-4 interactive share on any arrival process.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RequestClass {
    /// Scheduling class of requests generated in this slot.
    pub priority: Priority,
    /// Latency objectives of requests generated in this slot.
    pub slo: SloSpec,
}

impl RequestClass {
    /// An [`Priority::Interactive`] slot with TTFT/TPOT deadlines.
    #[must_use]
    pub fn interactive(ttft_s: f64, tpot_s: f64) -> Self {
        RequestClass {
            priority: Priority::Interactive,
            slo: SloSpec::interactive(ttft_s, tpot_s),
        }
    }

    /// A [`Priority::Batch`] slot with no deadlines (the default).
    #[must_use]
    pub fn batch() -> Self {
        RequestClass::default()
    }
}

/// A fully materialized request trace ready to serve.
#[derive(Debug, Clone, PartialEq)]
pub struct Workload {
    /// Requests sorted by arrival cycle (closed-loop releases carry
    /// `f64::INFINITY` and are released in order upon completions).
    pub requests: Vec<Request>,
    /// `Some(concurrency)` when the trace is closed-loop.
    pub closed_loop: Option<usize>,
}

impl Workload {
    /// Offered load in requests per second (open-loop processes only):
    /// request count over the span of finite arrivals.
    #[must_use]
    pub fn offered_rps(&self) -> Option<f64> {
        if self.closed_loop.is_some() {
            return None;
        }
        let last = self
            .requests
            .iter()
            .map(|r| r.arrival_cycle)
            .fold(0.0f64, f64::max);
        if last <= 0.0 {
            return None;
        }
        Some(self.requests.len() as f64 / (last / CLOCK_HZ))
    }

    /// Total tokens the trace asks to decode.
    #[must_use]
    pub fn total_decode_tokens(&self) -> usize {
        self.requests.iter().map(|r| r.decode_len).sum()
    }
}

/// Builds deterministic request traces from a task mix and an arrival
/// process.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadGenerator {
    /// Task shapes cycled round-robin across generated requests.
    pub task_mix: Vec<Task>,
    /// Scheduling classes cycled round-robin across generated requests
    /// (independently of the task cycle).
    pub class_mix: Vec<RequestClass>,
    /// Shared prompt prefixes cycled round-robin across generated
    /// requests (independently of the task and class cycles): each slot
    /// stamps its [`SharedPrefix`] onto the requests it lands on, `None`
    /// slots leave the prompt fully unique. E.g.
    /// `[Some(a), Some(b), None]` models two tenant system prompts plus
    /// a one-in-three stream of ad-hoc prompts. The default single-`None`
    /// mix declares no prefixes at all.
    pub prefix_mix: Vec<Option<SharedPrefix>>,
    /// Requests to generate.
    pub count: usize,
    /// Arrival process.
    pub process: ArrivalProcess,
}

impl LoadGenerator {
    /// A generator serving one task shape in the default batch class.
    #[must_use]
    pub fn uniform(task: Task, count: usize, process: ArrivalProcess) -> Self {
        LoadGenerator {
            task_mix: vec![task],
            class_mix: vec![RequestClass::batch()],
            prefix_mix: vec![None],
            count,
            process,
        }
    }

    /// A copy stamping the given class mix onto generated requests.
    #[must_use]
    pub fn with_classes(mut self, class_mix: Vec<RequestClass>) -> Self {
        self.class_mix = class_mix;
        self
    }

    /// A copy stamping the given shared-prefix mix onto generated
    /// requests (`None` slots generate fully unique prompts).
    #[must_use]
    pub fn with_prefixes(mut self, prefix_mix: Vec<Option<SharedPrefix>>) -> Self {
        self.prefix_mix = prefix_mix;
        self
    }

    /// Materializes the request trace.
    ///
    /// # Panics
    ///
    /// Panics if the task, class, or prefix mix is empty, the count is
    /// zero, an open-loop rate is not positive, or a prefix slot is
    /// longer than the prompt it lands on.
    #[must_use]
    pub fn generate(&self) -> Workload {
        assert!(!self.task_mix.is_empty(), "empty task mix");
        assert!(!self.class_mix.is_empty(), "empty class mix");
        assert!(!self.prefix_mix.is_empty(), "empty prefix mix");
        assert!(self.count > 0, "empty workload");
        let task = |i: usize| &self.task_mix[i % self.task_mix.len()];
        let classed = |i: usize, r: Request| {
            let class = &self.class_mix[i % self.class_mix.len()];
            let r = r.with_priority(class.priority).with_slo(class.slo);
            match self.prefix_mix[i % self.prefix_mix.len()] {
                Some(prefix) => {
                    assert!(
                        prefix.tokens <= r.prompt_len,
                        "prefix slot {} ({} tokens) exceeds the {}-token prompt it landed on",
                        prefix.id,
                        prefix.tokens,
                        r.prompt_len
                    );
                    r.with_prefix(prefix)
                }
                None => r,
            }
        };
        match &self.process {
            ArrivalProcess::ClosedLoop { concurrency } => {
                assert!(*concurrency > 0, "closed loop needs concurrency >= 1");
                let requests = (0..self.count)
                    .map(|i| {
                        let arrival = if i < *concurrency { 0.0 } else { f64::INFINITY };
                        classed(i, Request::from_task(i as u64, task(i), arrival))
                    })
                    .collect();
                Workload {
                    requests,
                    closed_loop: Some(*concurrency),
                }
            }
            ArrivalProcess::Poisson { rate_rps, seed } => {
                assert!(*rate_rps > 0.0, "rate must be positive");
                let mut rng = StdRng::seed_from_u64(*seed);
                let mean_gap = CLOCK_HZ / rate_rps;
                let mut now = 0.0f64;
                let requests = (0..self.count)
                    .map(|i| {
                        now += exponential_gap(&mut rng, mean_gap);
                        classed(i, Request::from_task(i as u64, task(i), now))
                    })
                    .collect();
                Workload {
                    requests,
                    closed_loop: None,
                }
            }
            ArrivalProcess::Bursty {
                rate_rps,
                burst_factor,
                burst_len,
                seed,
            } => {
                assert!(*rate_rps > 0.0, "rate must be positive");
                assert!(*burst_factor > 1.0, "burst factor must exceed 1");
                assert!(*burst_len > 0, "burst length must be positive");
                let mut rng = StdRng::seed_from_u64(*seed);
                let mean_gap = CLOCK_HZ / rate_rps;
                // Inside a burst arrivals run at burst_factor × rate; the
                // first gap of each burst is stretched so the long-run mean
                // stays at `rate_rps`: burst_len gaps must average mean_gap.
                let in_burst_gap = mean_gap / burst_factor;
                let lead_gap =
                    mean_gap * *burst_len as f64 - in_burst_gap * (*burst_len as f64 - 1.0);
                let mut now = 0.0f64;
                let requests = (0..self.count)
                    .map(|i| {
                        let gap = if i % burst_len == 0 {
                            lead_gap
                        } else {
                            in_burst_gap
                        };
                        now += exponential_gap(&mut rng, gap);
                        classed(i, Request::from_task(i as u64, task(i), now))
                    })
                    .collect();
                Workload {
                    requests,
                    closed_loop: None,
                }
            }
            ArrivalProcess::Diurnal {
                rate_rps,
                amplitude,
                period_s,
                seed,
            } => {
                assert!(*rate_rps > 0.0, "rate must be positive");
                assert!(
                    (0.0..1.0).contains(amplitude),
                    "amplitude must be in [0, 1)"
                );
                assert!(*period_s > 0.0, "period must be positive");
                let mut rng = StdRng::seed_from_u64(*seed);
                let period_cycles = period_s * CLOCK_HZ;
                let mut now = 0.0f64;
                let requests = (0..self.count)
                    .map(|i| {
                        // Per-gap approximation of the inhomogeneous
                        // process: each gap is exponential at the rate in
                        // effect when the previous request arrived. Gaps
                        // are short relative to the period, so the local
                        // rate barely moves within one.
                        let phase = 2.0 * std::f64::consts::PI * now / period_cycles;
                        let rate = rate_rps * (1.0 + amplitude * phase.sin());
                        now += exponential_gap(&mut rng, CLOCK_HZ / rate);
                        classed(i, Request::from_task(i as u64, task(i), now))
                    })
                    .collect();
                Workload {
                    requests,
                    closed_loop: None,
                }
            }
        }
    }
}

/// Exponential inter-arrival draw with the given mean, in cycles.
fn exponential_gap(rng: &mut StdRng, mean_cycles: f64) -> f64 {
    let u: f64 = rng.gen_range(1e-12f64..1.0);
    -u.ln() * mean_cycles
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_arrivals_are_sorted_and_deterministic() {
        let generator = LoadGenerator::uniform(
            Task::cola(),
            64,
            ArrivalProcess::Poisson {
                rate_rps: 100.0,
                seed: 9,
            },
        );
        let a = generator.generate();
        let b = generator.generate();
        assert_eq!(a, b);
        assert!(a
            .requests
            .windows(2)
            .all(|w| w[0].arrival_cycle <= w[1].arrival_cycle));
        let rps = a.offered_rps().unwrap();
        assert!(rps > 50.0 && rps < 200.0, "offered {rps}");
    }

    #[test]
    fn bursty_preserves_long_run_rate() {
        let generator = LoadGenerator::uniform(
            Task::cola(),
            256,
            ArrivalProcess::Bursty {
                rate_rps: 50.0,
                burst_factor: 8.0,
                burst_len: 16,
                seed: 4,
            },
        );
        let w = generator.generate();
        let rps = w.offered_rps().unwrap();
        assert!(rps > 25.0 && rps < 100.0, "offered {rps}");
        // Gaps inside a burst are much shorter than burst-leading gaps.
        let gaps: Vec<f64> = w
            .requests
            .windows(2)
            .map(|w| w[1].arrival_cycle - w[0].arrival_cycle)
            .collect();
        let lead_mean = gaps.iter().skip(15).step_by(16).sum::<f64>() / (gaps.len() / 16) as f64;
        let in_mean = gaps
            .iter()
            .enumerate()
            .filter(|(i, _)| i % 16 != 15)
            .map(|(_, g)| g)
            .sum::<f64>()
            / (gaps.len() - gaps.len() / 16) as f64;
        assert!(
            lead_mean > 4.0 * in_mean,
            "lead {lead_mean} vs in-burst {in_mean}"
        );
    }

    #[test]
    fn diurnal_is_deterministic_sorted_and_rate_preserving() {
        let generator = LoadGenerator::uniform(
            Task::cola(),
            512,
            ArrivalProcess::Diurnal {
                rate_rps: 40.0,
                amplitude: 0.6,
                period_s: 8.0,
                seed: 11,
            },
        );
        let a = generator.generate();
        let b = generator.generate();
        assert_eq!(a, b);
        assert!(a
            .requests
            .windows(2)
            .all(|w| w[0].arrival_cycle <= w[1].arrival_cycle));
        let rps = a.offered_rps().unwrap();
        assert!(rps > 20.0 && rps < 80.0, "offered {rps}");
    }

    #[test]
    fn diurnal_peak_quarter_outdraws_trough_quarter() {
        // With amplitude 0.8 the first quarter-period runs near 1.8× the
        // mean rate and the third quarter near 0.2×: the peak quarter
        // must land far more arrivals than the trough quarter.
        let period_s = 16.0;
        let w = LoadGenerator::uniform(
            Task::cola(),
            2048,
            ArrivalProcess::Diurnal {
                rate_rps: 64.0,
                amplitude: 0.8,
                period_s,
                seed: 3,
            },
        )
        .generate();
        let quarter = period_s * CLOCK_HZ / 4.0;
        let in_quarter = |q: usize| {
            w.requests
                .iter()
                .filter(|r| {
                    let pos = r.arrival_cycle % (period_s * CLOCK_HZ);
                    pos >= q as f64 * quarter && pos < (q + 1) as f64 * quarter
                })
                .count()
        };
        // Quarter-averaged rates are (1 ± 0.8·2/π)× the mean — a ~3×
        // density ratio in expectation; 2.5× leaves sampling slack.
        let peak = in_quarter(0) as f64;
        let trough = in_quarter(2) as f64;
        assert!(
            peak > 2.5 * trough,
            "peak quarter {peak} vs trough quarter {trough}"
        );
    }

    #[test]
    #[should_panic(expected = "amplitude")]
    fn diurnal_rejects_amplitude_of_one() {
        let _ = LoadGenerator::uniform(
            Task::cola(),
            2,
            ArrivalProcess::Diurnal {
                rate_rps: 10.0,
                amplitude: 1.0,
                period_s: 60.0,
                seed: 0,
            },
        )
        .generate();
    }

    #[test]
    fn closed_loop_releases_only_concurrency_upfront() {
        let generator = LoadGenerator::uniform(
            Task::mnli(),
            10,
            ArrivalProcess::ClosedLoop { concurrency: 3 },
        );
        let w = generator.generate();
        assert_eq!(w.closed_loop, Some(3));
        assert_eq!(
            w.requests.iter().filter(|r| r.arrival_cycle == 0.0).count(),
            3
        );
        assert_eq!(
            w.requests
                .iter()
                .filter(|r| r.arrival_cycle.is_infinite())
                .count(),
            7
        );
        assert!(w.offered_rps().is_none());
    }

    #[test]
    fn task_mix_round_robins() {
        let generator = LoadGenerator {
            task_mix: vec![Task::cola(), Task::dolly()],
            class_mix: vec![RequestClass::batch()],
            prefix_mix: vec![None],
            count: 4,
            process: ArrivalProcess::ClosedLoop { concurrency: 4 },
        };
        let w = generator.generate();
        assert_eq!(w.requests[0].task_name, "Cola");
        assert_eq!(w.requests[1].task_name, "Dolly");
        assert_eq!(w.requests[2].task_name, "Cola");
    }

    #[test]
    fn class_mix_round_robins_independently_of_tasks() {
        let generator = LoadGenerator {
            task_mix: vec![Task::cola(), Task::dolly()],
            class_mix: vec![
                RequestClass::interactive(0.5, 0.05),
                RequestClass::batch(),
                RequestClass::batch(),
            ],
            prefix_mix: vec![None],
            count: 6,
            process: ArrivalProcess::ClosedLoop { concurrency: 6 },
        };
        let w = generator.generate();
        let classes: Vec<Priority> = w.requests.iter().map(|r| r.priority).collect();
        assert_eq!(
            classes,
            vec![
                Priority::Interactive,
                Priority::Batch,
                Priority::Batch,
                Priority::Interactive,
                Priority::Batch,
                Priority::Batch,
            ]
        );
        assert_eq!(w.requests[0].slo, SloSpec::interactive(0.5, 0.05));
        assert_eq!(w.requests[1].slo, SloSpec::none());
        // The 3-long class cycle is independent of the 2-long task cycle.
        assert_eq!(w.requests[3].task_name, "Dolly");
    }

    #[test]
    fn prefix_mix_round_robins_independently() {
        let header = SharedPrefix::new(1, 64);
        let system = SharedPrefix::new(2, 32);
        let generator = LoadGenerator::uniform(
            Task::mnli(),
            6,
            ArrivalProcess::ClosedLoop { concurrency: 6 },
        )
        .with_prefixes(vec![Some(header), Some(system), None]);
        let w = generator.generate();
        let prefixes: Vec<Option<SharedPrefix>> = w.requests.iter().map(|r| r.prefix).collect();
        assert_eq!(
            prefixes,
            vec![
                Some(header),
                Some(system),
                None,
                Some(header),
                Some(system),
                None
            ]
        );
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn oversized_prefix_slot_is_rejected_at_generation() {
        // Cola prompts are shorter than this prefix: the generator
        // refuses to emit a self-contradictory trace.
        let _ = LoadGenerator::uniform(
            Task::cola(),
            2,
            ArrivalProcess::ClosedLoop { concurrency: 2 },
        )
        .with_prefixes(vec![Some(SharedPrefix::new(1, 1 << 20))])
        .generate();
    }
}
