//! Preemption and eviction: reclaiming KV-pool bytes from running requests.
//!
//! PR 1's pool was append-only — a reservation lived until its request
//! completed, so one long-context request could wedge the pool exactly
//! where BGPP's memory savings should shine. This module makes the pool a
//! reclaimable resource: under admission pressure the simulator may evict
//! *victims* (strictly lower-[`Priority`](crate::Priority) in-flight
//! requests) to admit a blocked higher-priority request, under one of two
//! policies.
//!
//! # Drop-and-recompute vs swap
//!
//! **Drop-and-recompute** ([`EvictionPolicy::DropRecompute`]) releases the
//! victim's reservation and discards its resident KV outright. Eviction
//! itself is free; the bill arrives at resume time, when the prefill
//! *replays* over the victim's prompt plus every token it had already
//! generated (the tokens themselves were emitted and are kept — only their
//! KV entries must be recomputed). Replay cost is the cycle model's prefill
//! cost at the resume context `c`: a weight-stream constant plus an
//! O(c)·compute term plus an O(c²) attention term, so it grows
//! *superlinearly* in context.
//!
//! **Swap** ([`EvictionPolicy::Swap`]) copies the victim's resident KV
//! bytes out to host memory over the host link at eviction and back at
//! resume, charging `2 × resident_bytes / host_link_bytes_per_cycle`
//! core cycles of device stall in total. Swapped bytes are held in a
//! [`SwapLedger`] (host memory is modeled as unbounded) and the cost is
//! *linear* in context.
//!
//! The two curves cross: **drop-and-recompute wins at short contexts**
//! (little KV to rebuild, and the replay often rides a cheap prefill)
//! while **swap wins at long contexts** (moving `O(c)` bytes beats
//! recomputing `O(c²)` attention). On OPT-1.3B at the default edge-class
//! link the crossover sits at a few thousand tokens of context — the
//! `repro serving_slo` experiment sweeps both sides of it.
//!
//! # SLO-aware goodput
//!
//! Preemption only pays off if it protects latency objectives, so requests
//! carry per-request SLOs ([`SloSpec`](crate::SloSpec)): an optional TTFT
//! deadline and an optional TPOT deadline, both in seconds. A completed
//! request *meets its SLO* iff every deadline it declares is satisfied by
//! its measured latencies. **SLO-aware goodput** counts only the decoded
//! tokens of SLO-met completed requests per second of simulated time
//! ([`ServeReport::slo_goodput_tokens_per_s`](crate::ServeReport) and the
//! per-class [`ServeReport::slo_goodput_for`](crate::ServeReport::slo_goodput_for)):
//! a token delivered after its deadline contributes throughput but not
//! goodput, which is what makes FCFS's head-of-line blocking visible even
//! when it eventually completes every request.

use std::collections::BTreeMap;

use mcbp_mem::HbmConfig;

use crate::request::RequestId;

/// How the simulator reclaims KV-pool bytes under admission pressure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EvictionPolicy {
    /// Never preempt: a blocked request waits for completions to free
    /// bytes (the PR 1 behavior).
    #[default]
    None,
    /// Release the victim's KV and re-enqueue it; on resume the prefill
    /// replays over prompt + already-generated tokens. Cheap eviction,
    /// superlinear (in context) resume cost.
    DropRecompute,
    /// Copy the victim's resident KV to host memory and restore it on
    /// resume, charging host-link transfer cycles both ways. Linear (in
    /// context) cost, no recomputation.
    Swap,
}

/// Configuration of the preemption subsystem.
#[derive(Debug, Clone, PartialEq)]
pub struct PreemptConfig {
    /// Eviction policy applied when a higher-priority request cannot
    /// reserve pool bytes.
    pub policy: EvictionPolicy,
    /// Host-link bandwidth charged to swap transfers, in bytes per core
    /// cycle. The default is [`PreemptConfig::host_link_for`] over the
    /// paper's HBM spec: the device's 512-bit/cycle HBM stream divided by
    /// [`HOST_LINK_RATIO`] — an edge-class shared DMA link (the SLIM-style
    /// edge-serving regime), deliberately far below HBM bandwidth so the
    /// swap-vs-recompute tradeoff is visible. Datacenter-class links can
    /// be modeled by raising this figure.
    pub host_link_bytes_per_cycle: f64,
}

/// Ratio between HBM device bandwidth and the modeled host link:
/// 512 bits = 64 B per core cycle of HBM against 0.5 B per core cycle
/// (≈ 0.5 GB/s at the 1 GHz core clock) across the host link.
pub const HOST_LINK_RATIO: f64 = 128.0;

impl Default for PreemptConfig {
    fn default() -> Self {
        PreemptConfig {
            policy: EvictionPolicy::None,
            host_link_bytes_per_cycle: Self::host_link_for(&HbmConfig::default()),
        }
    }
}

impl PreemptConfig {
    /// Host-link bytes per core cycle derived from an HBM spec's aggregate
    /// bandwidth divided by [`HOST_LINK_RATIO`].
    #[must_use]
    pub fn host_link_for(hbm: &HbmConfig) -> f64 {
        hbm.bits_per_core_cycle as f64 / 8.0 / HOST_LINK_RATIO
    }

    /// A drop-and-recompute configuration at the default host link.
    #[must_use]
    pub fn drop_recompute() -> Self {
        PreemptConfig {
            policy: EvictionPolicy::DropRecompute,
            ..PreemptConfig::default()
        }
    }

    /// A swap configuration at the default host link.
    #[must_use]
    pub fn swap() -> Self {
        PreemptConfig {
            policy: EvictionPolicy::Swap,
            ..PreemptConfig::default()
        }
    }

    /// Core cycles one `bytes`-sized transfer occupies the host link
    /// (charged once per direction).
    ///
    /// # Panics
    ///
    /// Panics on a non-positive link bandwidth.
    #[must_use]
    pub fn transfer_cycles(&self, bytes: u64) -> f64 {
        assert!(
            self.host_link_bytes_per_cycle > 0.0,
            "host link bandwidth must be positive"
        );
        bytes as f64 / self.host_link_bytes_per_cycle
    }
}

/// Ledger of KV bytes held in host memory by swapped-out requests.
///
/// Host capacity is modeled as unbounded; the ledger exists so swapped
/// bytes are conserved (swap-in restores exactly what swap-out removed)
/// and so peak host residency is reportable.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SwapLedger {
    held: BTreeMap<RequestId, u64>,
    held_bytes: u64,
    peak_held_bytes: u64,
    total_out_bytes: u64,
    total_in_bytes: u64,
}

impl SwapLedger {
    /// An empty ledger.
    #[must_use]
    pub fn new() -> Self {
        SwapLedger::default()
    }

    /// Records `bytes` swapped out for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` already holds swapped bytes (a request cannot be
    /// swapped out twice without an intervening swap-in).
    pub fn swap_out(&mut self, id: RequestId, bytes: u64) {
        assert!(
            self.held.insert(id, bytes).is_none(),
            "request {id} swapped out twice"
        );
        self.held_bytes += bytes;
        self.peak_held_bytes = self.peak_held_bytes.max(self.held_bytes);
        self.total_out_bytes += bytes;
    }

    /// Removes and returns the bytes held for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` holds no swapped bytes.
    pub fn swap_in(&mut self, id: RequestId) -> u64 {
        let bytes = self.held.remove(&id).expect("swap-in without swap-out");
        self.held_bytes -= bytes;
        self.total_in_bytes += bytes;
        bytes
    }

    /// Bytes currently held in host memory.
    #[must_use]
    pub fn held_bytes(&self) -> u64 {
        self.held_bytes
    }

    /// Highest host residency observed.
    #[must_use]
    pub fn peak_held_bytes(&self) -> u64 {
        self.peak_held_bytes
    }

    /// Total bytes ever swapped out.
    #[must_use]
    pub fn total_out_bytes(&self) -> u64 {
        self.total_out_bytes
    }

    /// Total bytes ever swapped back in.
    #[must_use]
    pub fn total_in_bytes(&self) -> u64 {
        self.total_in_bytes
    }

    /// Whether nothing is swapped out.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.held.is_empty()
    }
}

/// Ledger of KV bytes in flight between device pools during a
/// prefill→decode handoff (disaggregated serving).
///
/// Shaped like [`SwapLedger`], and enforcing the same conservation
/// discipline: `handoff_out` records the bytes released from the prefill
/// device's pool the moment they leave, `handoff_in` removes exactly
/// those bytes when the decode device re-reserves them, and the
/// double-out / in-without-out panics make a mid-handoff double-free an
/// immediate accounting failure instead of silent byte loss. A request
/// in flight between pools is in *neither* device's active or suspended
/// set, so preemption victim selection can never touch it — the ledger's
/// panics are the backstop should that invariant ever break.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HandoffLedger {
    in_flight: BTreeMap<RequestId, u64>,
    in_flight_bytes: u64,
    peak_in_flight_bytes: u64,
    total_out_bytes: u64,
    total_in_bytes: u64,
    handoffs: u64,
}

impl HandoffLedger {
    /// An empty ledger.
    #[must_use]
    pub fn new() -> Self {
        HandoffLedger::default()
    }

    /// Records `bytes` departing the prefill device's pool for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is already in flight (one request cannot be handed
    /// off twice without arriving in between — a double-free).
    pub fn handoff_out(&mut self, id: RequestId, bytes: u64) {
        assert!(
            self.in_flight.insert(id, bytes).is_none(),
            "request {id} handed off twice"
        );
        self.in_flight_bytes += bytes;
        self.peak_in_flight_bytes = self.peak_in_flight_bytes.max(self.in_flight_bytes);
        self.total_out_bytes += bytes;
        self.handoffs += 1;
    }

    /// Removes and returns the bytes in flight for `id` (the decode
    /// device has re-reserved them).
    ///
    /// # Panics
    ///
    /// Panics if `id` is not in flight.
    pub fn handoff_in(&mut self, id: RequestId) -> u64 {
        let bytes = self
            .in_flight
            .remove(&id)
            .expect("handoff-in without handoff-out");
        self.in_flight_bytes -= bytes;
        self.total_in_bytes += bytes;
        bytes
    }

    /// Bytes currently riding the link between pools.
    #[must_use]
    pub fn in_flight_bytes(&self) -> u64 {
        self.in_flight_bytes
    }

    /// Highest in-flight byte count observed.
    #[must_use]
    pub fn peak_in_flight_bytes(&self) -> u64 {
        self.peak_in_flight_bytes
    }

    /// Total bytes ever handed off.
    #[must_use]
    pub fn total_out_bytes(&self) -> u64 {
        self.total_out_bytes
    }

    /// Total bytes ever re-reserved on a decode device.
    #[must_use]
    pub fn total_in_bytes(&self) -> u64 {
        self.total_in_bytes
    }

    /// Completed `handoff_out` calls.
    #[must_use]
    pub fn handoffs(&self) -> u64 {
        self.handoffs
    }

    /// Whether nothing is in flight.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.in_flight.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_host_link_tracks_hbm_spec() {
        let cfg = PreemptConfig::default();
        // 512 bits/cycle = 64 B/cycle over a 128:1 link ratio.
        assert!((cfg.host_link_bytes_per_cycle - 0.5).abs() < 1e-12);
        assert!((cfg.transfer_cycles(1000) - 2000.0).abs() < 1e-9);
        assert_eq!(cfg.policy, EvictionPolicy::None);
    }

    #[test]
    fn ledger_conserves_swapped_bytes() {
        let mut ledger = SwapLedger::new();
        ledger.swap_out(3, 500);
        ledger.swap_out(7, 200);
        assert_eq!(ledger.held_bytes(), 700);
        assert_eq!(ledger.peak_held_bytes(), 700);
        assert_eq!(ledger.swap_in(3), 500);
        ledger.swap_out(3, 100);
        assert_eq!(ledger.swap_in(3), 100);
        assert_eq!(ledger.swap_in(7), 200);
        assert!(ledger.is_empty());
        assert_eq!(ledger.total_out_bytes(), 800);
        assert_eq!(ledger.total_in_bytes(), 800);
        assert_eq!(ledger.peak_held_bytes(), 700);
    }

    #[test]
    #[should_panic(expected = "swapped out twice")]
    fn double_swap_out_is_an_accounting_bug() {
        let mut ledger = SwapLedger::new();
        ledger.swap_out(1, 10);
        ledger.swap_out(1, 20);
    }

    #[test]
    fn handoff_ledger_conserves_bytes_in_flight() {
        let mut ledger = HandoffLedger::new();
        ledger.handoff_out(3, 500);
        ledger.handoff_out(7, 200);
        assert_eq!(ledger.in_flight_bytes(), 700);
        assert_eq!(ledger.peak_in_flight_bytes(), 700);
        assert_eq!(ledger.handoff_in(3), 500);
        ledger.handoff_out(3, 100);
        assert_eq!(ledger.handoff_in(3), 100);
        assert_eq!(ledger.handoff_in(7), 200);
        assert!(ledger.is_empty());
        assert_eq!(ledger.total_out_bytes(), 800);
        assert_eq!(ledger.total_in_bytes(), 800);
        assert_eq!(ledger.handoffs(), 3);
    }

    #[test]
    #[should_panic(expected = "handed off twice")]
    fn double_handoff_out_is_a_double_free() {
        let mut ledger = HandoffLedger::new();
        ledger.handoff_out(1, 10);
        ledger.handoff_out(1, 20);
    }

    #[test]
    #[should_panic(expected = "handoff-in without handoff-out")]
    fn handoff_in_without_out_is_an_accounting_bug() {
        let mut ledger = HandoffLedger::new();
        ledger.handoff_in(9);
    }
}
