//! Property-based equivalence of the sequential and parallel fleet
//! drives: over arbitrary arrival traces, fleet widths, worker counts,
//! dispatch policies, schedulers, pool pressure (preemption), shared
//! prefixes, and open- versus closed-loop load, a run with
//! `ServeConfig::fleet_workers = Some(w)` must produce the **bit-exact**
//! `ServeReport` *and* `RunTrace` of the sequential reference
//! (`fleet_workers = None`). The parallel drive is pure execution
//! strategy; any observable divergence is a bug.

use std::sync::OnceLock;

use mcbp_model::LlmConfig;
use mcbp_serve::{
    DeviceProfile, DeviceRole, DispatchPolicy, Priority, Request, RequestId, Scheduler,
    ServeConfig, ServeSim, SharedPrefix, SloSpec, Workload,
};
use mcbp_workloads::{
    Accelerator, PhaseCost, RunReport, SparsityProfile, Task, TraceContext, WeightGenerator,
};
use proptest::prelude::*;

/// Analytic accelerator with the qualitative serving shape (see
/// `step_budget_properties.rs`): exact arithmetic, fast enough for
/// hundreds of simulated fleet runs.
struct Toy;

impl Accelerator for Toy {
    fn name(&self) -> &str {
        "toy"
    }

    fn run(&self, ctx: &TraceContext) -> RunReport {
        let b = ctx.batch as f64;
        RunReport {
            prefill: PhaseCost {
                gemm_cycles: 10.0 * ctx.task.prompt_len as f64 * b,
                compute_pj: ctx.task.prompt_len as f64 * b,
                ..Default::default()
            },
            decode: PhaseCost {
                weight_load_cycles: 1_000_000.0,
                kv_load_cycles: 100.0 * ctx.task.prompt_len as f64 * b * ctx.task.decode_len as f64,
                compute_pj: b,
                ..Default::default()
            },
        }
    }
}

/// The trace-context template, built once (weight-profile measurement is
/// the expensive part and is identical across cases).
fn template() -> TraceContext {
    static TEMPLATE: OnceLock<TraceContext> = OnceLock::new();
    TEMPLATE
        .get_or_init(|| {
            let model = LlmConfig::opt1b3();
            let gen = WeightGenerator::for_model(&model);
            let profile = SparsityProfile::measure(&gen.quantized_sample(16, 64, 1), 4);
            TraceContext {
                model,
                task: Task::cola(),
                batch: 1,
                weight_profile: profile,
                attention_keep: 0.3,
            }
        })
        .clone()
}

/// One raw generated request: `((prompt_len, decode_len, arrival_gap),
/// (interactive, carries_prefix))` — nested because the vendored
/// proptest implements tuple strategies up to arity four.
type RawRequest = ((usize, usize, u32), (u8, u8));

/// Materializes an arbitrary trace. With `closed_concurrency` set, only
/// the first `c` requests arrive on the clock; the rest carry
/// `f64::INFINITY` and are released by completions — the fixed-population
/// closed loop. Requests flagged with a prefix share one 48-token prefix
/// (only when the prompt is long enough to hold it).
fn workload_from(raw: &[RawRequest], closed_concurrency: Option<usize>) -> Workload {
    let mut arrival = 0.0f64;
    let requests = raw
        .iter()
        .enumerate()
        .map(
            |(i, &((prompt_len, decode_len, gap), (class_bit, prefix_bit)))| {
                arrival += f64::from(gap);
                let closed_tail = closed_concurrency.is_some_and(|c| i >= c);
                Request {
                    id: i as RequestId,
                    arrival_cycle: if closed_tail { f64::INFINITY } else { arrival },
                    prompt_len,
                    decode_len,
                    task_name: "prop",
                    priority: if class_bit == 1 {
                        Priority::Interactive
                    } else {
                        Priority::Batch
                    },
                    slo: SloSpec::none(),
                    prefix: (prefix_bit == 1 && prompt_len >= 48).then(|| SharedPrefix::new(7, 48)),
                }
            },
        )
        .collect();
    Workload {
        requests,
        closed_loop: closed_concurrency,
    }
}

fn make_scheduler(priority: bool) -> Box<dyn Scheduler> {
    if priority {
        Box::new(mcbp_serve::PriorityScheduler::new())
    } else {
        Box::new(mcbp_serve::ContinuousBatchScheduler::new())
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// The tentpole equivalence property. `workers` ranges over 1 (the
    /// parallel entry immediately reduces to the sequential path), 2,
    /// and up to the fleet width; `hetero` skews per-device throughput
    /// weights; a tight pool budget exercises preemption on some cases;
    /// `roles` specializes the fleet into disaggregated prefill/decode
    /// pools (0 = all `Unified`, 1 = split `Prefill`/`Decode`, 2 = one
    /// `Prefill` device feeding `Unified` peers), so KV handoffs race the
    /// parallel drive's phase boundaries too.
    #[test]
    fn parallel_drive_is_bit_exact_with_the_sequential_reference(
        raw in proptest::collection::vec(
            ((1usize..400, 0usize..10, 0u32..2_000_000), (0u8..2, 0u8..2)),
            1..20,
        ),
        devices in 2usize..=4,
        workers in 1usize..=4,
        policy_ix in 0usize..DispatchPolicy::ALL.len(),
        priority_sched in 0u8..2,
        hetero in 0u8..2,
        tight_pool in 0u8..2,
        closed in 0u8..2,
        concurrency in 1usize..6,
        roles in 0u8..3,
    ) {
        let policy = DispatchPolicy::ALL[policy_ix];
        let workload = workload_from(&raw, (closed == 1).then_some(concurrency.min(raw.len())));
        let accel = Toy;
        let budget = (tight_pool == 1).then(|| {
            // Roughly two of the largest requests fit: admission stalls
            // and (priority) preemption become common, not exotic.
            mcbp_serve::request_kv_bytes(&template().model, 400 + 10, 0.3) * 2
        });
        let base = ServeConfig {
            kv_budget_bytes: budget,
            ..ServeConfig::default()
        };
        let seq_sim = ServeSim::try_new(&accel, template(), base.clone()).expect("valid config");
        let par_cfg = ServeConfig { fleet_workers: Some(workers), ..base };
        let par_sim = ServeSim::try_new(&accel, template(), par_cfg).expect("valid config");
        let profiles: Vec<DeviceProfile> = (0..devices)
            .map(|i| {
                let t = if hetero == 1 { 1.0 + 0.5 * i as f64 } else { 1.0 };
                let role = match roles {
                    // Fleet splits in half: low indices prefill, the rest
                    // decode (devices >= 2, so both pools are non-empty).
                    1 if i < devices / 2 => DeviceRole::Prefill,
                    1 => DeviceRole::Decode,
                    // One dedicated prefill device handing off to
                    // unified peers that also take their own prompts.
                    2 if i == 0 => DeviceRole::Prefill,
                    _ => DeviceRole::Unified,
                };
                DeviceProfile::uniform().with_throughput(t).with_role(role)
            })
            .collect();
        let mut mk = || make_scheduler(priority_sched == 1);
        let (seq_report, seq_trace) =
            seq_sim.run_fleet_profiles_traced(&workload, &profiles, policy, &mut mk);
        let (par_report, par_trace) =
            par_sim.run_fleet_profiles_traced(&workload, &profiles, policy, &mut mk);
        prop_assert_eq!(
            &seq_report, &par_report,
            "ServeReport diverged ({:?}, {} devices, {} workers)",
            policy, devices, workers
        );
        prop_assert_eq!(
            &seq_trace, &par_trace,
            "RunTrace diverged ({:?}, {} devices, {} workers)",
            policy, devices, workers
        );
        // Sanity: the runs actually served the trace.
        prop_assert_eq!(seq_report.completed + seq_report.dropped, raw.len());
    }
}
