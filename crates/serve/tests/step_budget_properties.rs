//! Property-based tests for the shared per-step token budget: over
//! arbitrary arrival traces, (1) no planned or executed step ever exceeds
//! `ServeConfig::step_token_budget`, and (2) with the budget disabled
//! (`None`) the refactored schedulers reproduce the PR 3 phase-alternating
//! schedule **step for step** — the mixed-step machinery must be a strict
//! superset, not a behavior change, so `None` stays a faithful ablation
//! baseline.
//!
//! The equivalence check compares against reference implementations of the
//! PR 3 planners (transcribed here, emitting only pure plans) on the full
//! recorded plan sequence *and* the resulting `ServeReport`s.

use std::sync::OnceLock;
use std::sync::{Arc, Mutex};

use mcbp_model::LlmConfig;
use mcbp_serve::{
    Priority, Request, RequestId, SchedEntry, SchedView, Scheduler, ServeConfig, ServeSim, SloSpec,
    StepPlan, Workload,
};
use mcbp_workloads::{
    Accelerator, PhaseCost, RunReport, SparsityProfile, Task, TraceContext, WeightGenerator,
};
use proptest::prelude::*;

/// Analytic accelerator with the qualitative serving shape: a fixed
/// decode weight-stream cost plus per-stream context terms, exact
/// arithmetic, fast enough for hundreds of simulated runs.
struct Toy;

impl Accelerator for Toy {
    fn name(&self) -> &str {
        "toy"
    }

    fn run(&self, ctx: &TraceContext) -> RunReport {
        let b = ctx.batch as f64;
        RunReport {
            prefill: PhaseCost {
                gemm_cycles: 10.0 * ctx.task.prompt_len as f64 * b,
                compute_pj: ctx.task.prompt_len as f64 * b,
                ..Default::default()
            },
            decode: PhaseCost {
                weight_load_cycles: 1_000_000.0,
                kv_load_cycles: 100.0 * ctx.task.prompt_len as f64 * b * ctx.task.decode_len as f64,
                compute_pj: b,
                ..Default::default()
            },
        }
    }
}

/// The trace-context template, built once (weight-profile measurement is
/// the expensive part and is identical across cases).
fn template() -> TraceContext {
    static TEMPLATE: OnceLock<TraceContext> = OnceLock::new();
    TEMPLATE
        .get_or_init(|| {
            let model = LlmConfig::opt1b3();
            let gen = WeightGenerator::for_model(&model);
            let profile = SparsityProfile::measure(&gen.quantized_sample(16, 64, 1), 4);
            TraceContext {
                model,
                task: Task::cola(),
                batch: 1,
                weight_profile: profile,
                attention_keep: 0.3,
            }
        })
        .clone()
}

/// One raw generated request: `(prompt_len, decode_len, arrival_gap,
/// interactive)`.
type RawRequest = (usize, usize, u32, u8);

/// Materializes an arbitrary arrival trace: cumulative gaps, mixed
/// priority classes, no SLOs (latency objectives are irrelevant to the
/// budget invariant).
fn workload_from(raw: &[RawRequest]) -> Workload {
    let mut arrival = 0.0f64;
    let requests = raw
        .iter()
        .enumerate()
        .map(|(i, &(prompt_len, decode_len, gap, class_bit))| {
            arrival += f64::from(gap);
            Request {
                id: i as RequestId,
                arrival_cycle: arrival,
                prompt_len,
                decode_len,
                task_name: "prop",
                priority: if class_bit == 1 {
                    Priority::Interactive
                } else {
                    Priority::Batch
                },
                slo: SloSpec::none(),
                prefix: None,
            }
        })
        .collect();
    Workload {
        requests,
        closed_loop: None,
    }
}

/// Scheduler wrapper that records every emitted plan and the maximum
/// planned token count, for post-run assertions.
struct Recording<S> {
    inner: S,
    plans: Arc<Mutex<Vec<StepPlan>>>,
    max_tokens: Arc<Mutex<usize>>,
}

impl<S> Recording<S> {
    fn new(inner: S) -> Self {
        Recording {
            inner,
            plans: Arc::new(Mutex::new(Vec::new())),
            max_tokens: Arc::new(Mutex::new(0)),
        }
    }
}

impl<S: Scheduler> Scheduler for Recording<S> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn plan(&mut self, view: &SchedView<'_>) -> StepPlan {
        let plan = self.inner.plan(view);
        {
            let mut max = self.max_tokens.lock().expect("max lock");
            *max = (*max).max(plan.planned_tokens(view));
        }
        self.plans.lock().expect("plans lock").push(plan.clone());
        plan
    }
}

/// Reference transcription of the PR 3 rotating window (identical to the
/// production `rotate_take`).
fn rotate_take(rotate: &mut usize, list: &[SchedEntry], take: usize) -> Vec<RequestId> {
    let n = list.len();
    if n == 0 || take == 0 {
        return Vec::new();
    }
    let take = take.min(n);
    let start = if n > take { *rotate % n } else { 0 };
    *rotate = rotate.wrapping_add(take);
    (0..take).map(|i| list[(start + i) % n].id).collect()
}

/// Reference transcription of the PR 3 continuous-batching planner:
/// strictly phase-alternating, budget-oblivious, pure plans only.
#[derive(Default)]
struct Pr3ContinuousBatch {
    rotate: usize,
    last_was_prefill: bool,
}

impl Scheduler for Pr3ContinuousBatch {
    fn name(&self) -> &str {
        "continuous-batching"
    }

    fn plan(&mut self, view: &SchedView<'_>) -> StepPlan {
        let width = view.max_batch.max(1);
        let wants_prefill = !view.waiting_prefill.is_empty() && view.decoding.len() < width;
        if wants_prefill && (view.decoding.is_empty() || !self.last_was_prefill) {
            self.last_was_prefill = true;
            let spare = width - view.decoding.len();
            let lead = view.waiting_prefill[0];
            let ids: Vec<RequestId> = view
                .waiting_prefill
                .iter()
                .filter(|e| e.len == lead.len && e.done == lead.done)
                .take(spare)
                .map(|e| e.id)
                .collect();
            return StepPlan::prefill(ids);
        }
        self.last_was_prefill = false;
        if view.decoding.is_empty() {
            return StepPlan::idle();
        }
        StepPlan::decode(rotate_take(&mut self.rotate, view.decoding, width))
    }
}

/// Reference transcription of the PR 3 priority planner: class-aware
/// phase alternation, budget-oblivious, pure plans only.
#[derive(Default)]
struct Pr3Priority {
    rotate_interactive: usize,
    rotate_batch: usize,
    last_was_prefill: bool,
}

impl Scheduler for Pr3Priority {
    fn name(&self) -> &str {
        "priority-cb"
    }

    fn plan(&mut self, view: &SchedView<'_>) -> StepPlan {
        let width = view.max_batch.max(1);
        let wants_prefill = !view.waiting_prefill.is_empty() && view.decoding.len() < width;
        if wants_prefill && (view.decoding.is_empty() || !self.last_was_prefill) {
            self.last_was_prefill = true;
            let spare = width - view.decoding.len();
            let best = view
                .waiting_prefill
                .iter()
                .map(|e| e.priority)
                .max()
                .expect("non-empty");
            let lead = view
                .waiting_prefill
                .iter()
                .find(|e| e.priority == best)
                .expect("class present");
            let ids: Vec<RequestId> = view
                .waiting_prefill
                .iter()
                .filter(|e| e.priority == best && e.len == lead.len && e.done == lead.done)
                .take(spare)
                .map(|e| e.id)
                .collect();
            return StepPlan::prefill(ids);
        }
        self.last_was_prefill = false;
        if view.decoding.is_empty() {
            return StepPlan::idle();
        }
        let interactive: Vec<SchedEntry> = view
            .decoding
            .iter()
            .filter(|e| e.priority == Priority::Interactive)
            .copied()
            .collect();
        let background: Vec<SchedEntry> = view
            .decoding
            .iter()
            .filter(|e| e.priority == Priority::Batch)
            .copied()
            .collect();
        let mut ids = rotate_take(&mut self.rotate_interactive, &interactive, width);
        let spare = width - ids.len();
        ids.extend(rotate_take(&mut self.rotate_batch, &background, spare));
        StepPlan::decode(ids)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The budget invariant: over arbitrary arrival traces, chunk sizes,
    /// widths, and budgets, no step planned by either coalescing
    /// scheduler exceeds the step token budget (chunk tokens plus one per
    /// decode member), and the simulator still conserves every request.
    /// The simulator itself asserts the executed-step bound, so a clean
    /// run is already evidence; the recorder re-checks the planned bound
    /// independently.
    #[test]
    fn no_step_exceeds_the_token_budget(
        raw in collection::vec((1usize..600, 0usize..12, 0u32..2_000_000, 0u8..2), 1..16),
        chunk in 1usize..=96,
        slack in 0usize..64,
        max_batch in 1usize..=8,
        priority_sched in 0u8..2,
    ) {
        let budget = chunk + slack;
        let accel = Toy;
        let cfg = ServeConfig {
            max_batch,
            prefill_chunk: Some(chunk),
            step_token_budget: Some(budget),
            ..ServeConfig::default()
        };
        let sim = ServeSim::try_new(&accel, template(), cfg).expect("config is valid");
        let workload = workload_from(&raw);
        let (report, max_tokens) = if priority_sched == 1 {
            let mut sched = Recording::new(mcbp_serve::PriorityScheduler::new());
            let max = Arc::clone(&sched.max_tokens);
            let out = (sim.run(&workload, &mut sched), *max.lock().expect("max lock"));
            out
        } else {
            let mut sched = Recording::new(mcbp_serve::ContinuousBatchScheduler::new());
            let max = Arc::clone(&sched.max_tokens);
            let out = (sim.run(&workload, &mut sched), *max.lock().expect("max lock"));
            out
        };
        prop_assert!(
            max_tokens <= budget,
            "planned {} tokens over the {}-token budget",
            max_tokens, budget
        );
        prop_assert_eq!(report.completed + report.dropped, raw.len());
        for rec in report.records.iter().filter(|r| r.completed()) {
            prop_assert_eq!(rec.tokens, rec.request.decode_len);
        }
        prop_assert!(report.steps.mean_budget_utilization > 0.0);
        prop_assert!(report.steps.mean_budget_utilization <= 1.0 + 1e-12);
    }

    /// Budget `None` reproduces the PR 3 alternating schedule step for
    /// step: the production schedulers emit the exact same plan sequence
    /// as the reference PR 3 transcriptions, and the resulting reports
    /// are bit-identical.
    #[test]
    fn budget_none_reproduces_the_pr3_alternating_schedule(
        raw in collection::vec((1usize..600, 0usize..12, 0u32..2_000_000, 0u8..2), 1..16),
        chunk in 1usize..=96,
        max_batch in 1usize..=8,
        priority_sched in 0u8..2,
    ) {
        let accel = Toy;
        let cfg = ServeConfig {
            max_batch,
            prefill_chunk: Some(chunk),
            step_token_budget: None,
            ..ServeConfig::default()
        };
        let sim = ServeSim::try_new(&accel, template(), cfg).expect("config is valid");
        let workload = workload_from(&raw);
        let ((new_report, new_plans), (ref_report, ref_plans)) = if priority_sched == 1 {
            let mut new_sched = Recording::new(mcbp_serve::PriorityScheduler::new());
            let new_plans = Arc::clone(&new_sched.plans);
            let mut ref_sched = Recording::new(Pr3Priority::default());
            let ref_plans = Arc::clone(&ref_sched.plans);
            (
                (sim.run(&workload, &mut new_sched), new_plans),
                (sim.run(&workload, &mut ref_sched), ref_plans),
            )
        } else {
            let mut new_sched = Recording::new(mcbp_serve::ContinuousBatchScheduler::new());
            let new_plans = Arc::clone(&new_sched.plans);
            let mut ref_sched = Recording::new(Pr3ContinuousBatch::default());
            let ref_plans = Arc::clone(&ref_sched.plans);
            (
                (sim.run(&workload, &mut new_sched), new_plans),
                (sim.run(&workload, &mut ref_sched), ref_plans),
            )
        };
        prop_assert_eq!(
            &*new_plans.lock().expect("plans lock"),
            &*ref_plans.lock().expect("plans lock"),
            "plan sequences diverged"
        );
        prop_assert_eq!(new_report, ref_report);
    }
}

/// A focused deterministic spot-check of the equivalence on the bursty
/// generator path (classes, bursts, chunked 8k prompts), complementing
/// the random traces above.
#[test]
fn budget_none_equivalence_holds_on_a_bursty_class_mix() {
    use mcbp_serve::{ArrivalProcess, LoadGenerator, RequestClass};
    let accel = Toy;
    let cfg = ServeConfig::default(); // step_token_budget: None
    let sim = ServeSim::new(&accel, template(), cfg);
    let load = LoadGenerator {
        task_mix: vec![Task::dolly().with_decode(8), Task::cola().with_decode(16)],
        class_mix: vec![RequestClass::interactive(0.5, 0.05), RequestClass::batch()],
        prefix_mix: vec![None],
        count: 14,
        process: ArrivalProcess::Bursty {
            rate_rps: 2000.0,
            burst_factor: 6.0,
            burst_len: 4,
            seed: 5,
        },
    }
    .generate();
    let mut new_sched = Recording::new(mcbp_serve::PriorityScheduler::new());
    let new_plans = Arc::clone(&new_sched.plans);
    let mut ref_sched = Recording::new(Pr3Priority::default());
    let ref_plans = Arc::clone(&ref_sched.plans);
    let new_report = sim.run(&load, &mut new_sched);
    let ref_report = sim.run(&load, &mut ref_sched);
    assert!(
        new_plans.lock().expect("plans lock").len() > 20,
        "the trace must exercise a real schedule"
    );
    assert_eq!(
        &*new_plans.lock().expect("plans lock"),
        &*ref_plans.lock().expect("plans lock")
    );
    assert_eq!(new_report, ref_report);
    assert_eq!(new_report.steps.mixed_steps, 0, "no budget, no mixed steps");
}
