//! Backward-compatibility equivalence for the disaggregation axis: a
//! fleet of explicitly `Unified` devices — even with an explicitly
//! configured (zero-cost) host link — must produce the **bit-exact**
//! `ServeReport` and `RunTrace` of the pre-disaggregation default
//! profiles, under the sequential *and* the parallel drive, across every
//! dispatch policy. `DeviceRole::Unified` is the default precisely so
//! that every pre-existing configuration replays unchanged; this test
//! pins that contract.

use std::sync::OnceLock;

use mcbp_serve::{
    DeviceProfile, DeviceRole, DispatchPolicy, Priority, Request, RequestId, ServeConfig, ServeSim,
    SloSpec, Workload,
};
use mcbp_workloads::{
    Accelerator, PhaseCost, RunReport, SparsityProfile, Task, TraceContext, WeightGenerator,
};

struct Toy;

impl Accelerator for Toy {
    fn name(&self) -> &str {
        "toy"
    }

    fn run(&self, ctx: &TraceContext) -> RunReport {
        let b = ctx.batch as f64;
        RunReport {
            prefill: PhaseCost {
                gemm_cycles: 10.0 * ctx.task.prompt_len as f64 * b,
                compute_pj: ctx.task.prompt_len as f64 * b,
                ..Default::default()
            },
            decode: PhaseCost {
                weight_load_cycles: 1_000_000.0,
                kv_load_cycles: 100.0 * ctx.task.prompt_len as f64 * b * ctx.task.decode_len as f64,
                compute_pj: b,
                ..Default::default()
            },
        }
    }
}

fn template() -> TraceContext {
    static TEMPLATE: OnceLock<TraceContext> = OnceLock::new();
    TEMPLATE
        .get_or_init(|| {
            let model = LlmConfig::opt1b3();
            let gen = WeightGenerator::for_model(&model);
            let profile = SparsityProfile::measure(&gen.quantized_sample(16, 64, 1), 4);
            TraceContext {
                model,
                task: Task::cola(),
                batch: 1,
                weight_profile: profile,
                attention_keep: 0.3,
            }
        })
        .clone()
}

use mcbp_model::LlmConfig;
use mcbp_serve::SharedPrefix;

/// A deterministic mixed workload: staggered arrivals, both priority
/// classes, a shared prefix, and a prompt-only request (no decode).
fn workload() -> Workload {
    let requests = (0..16u64)
        .map(|i| Request {
            id: i as RequestId,
            arrival_cycle: 40_000.0 * i as f64,
            prompt_len: 48 + 23 * (i as usize % 5),
            decode_len: if i % 7 == 3 { 0 } else { 2 + (i as usize % 6) },
            task_name: "equiv",
            priority: if i % 3 == 0 {
                Priority::Interactive
            } else {
                Priority::Batch
            },
            slo: SloSpec::none(),
            prefix: (i % 4 == 1).then(|| SharedPrefix::new(9, 32)),
        })
        .collect();
    Workload {
        requests,
        closed_loop: None,
    }
}

fn sim(accel: &Toy, workers: Option<usize>) -> ServeSim<'_> {
    let cfg = ServeConfig {
        fleet_workers: workers,
        ..ServeConfig::default()
    };
    ServeSim::try_new(accel, template(), cfg).expect("valid config")
}

/// Explicit `Unified` roles (and an explicit link) are the identity: the
/// role axis is invisible until a fleet actually specializes.
#[test]
fn explicit_unified_roles_are_bit_exact_with_default_profiles() {
    let accel = Toy;
    let workload = workload();
    let baseline_profiles = [DeviceProfile::uniform(); 3];
    let unified_profiles = [
        DeviceProfile::uniform().with_role(DeviceRole::Unified),
        DeviceProfile::uniform()
            .with_role(DeviceRole::Unified)
            .with_host_link(f64::INFINITY),
        DeviceProfile::uniform().with_role(DeviceRole::Unified),
    ];
    for policy in DispatchPolicy::ALL {
        for workers in [None, Some(3)] {
            let s = sim(&accel, workers);
            let mut mk = || -> Box<dyn mcbp_serve::Scheduler> {
                Box::new(mcbp_serve::PriorityScheduler::new())
            };
            let (base_report, base_trace) =
                s.run_fleet_profiles_traced(&workload, &baseline_profiles, policy, &mut mk);
            let (uni_report, uni_trace) =
                s.run_fleet_profiles_traced(&workload, &unified_profiles, policy, &mut mk);
            assert_eq!(
                base_report, uni_report,
                "ServeReport diverged under {policy:?} (workers {workers:?})"
            );
            assert_eq!(
                base_trace, uni_trace,
                "RunTrace diverged under {policy:?} (workers {workers:?})"
            );
            // The identity fleet never touches the handoff machinery.
            assert!(!uni_report.handoff.any());
            assert_eq!(uni_trace.handoff_count(), 0);
            assert_eq!(uni_report.completed, workload.requests.len());
        }
    }
}

/// A genuinely split fleet over a zero-cost link completes the same
/// workload (prompt-only requests retire on the prefill side; everything
/// else crosses the link), conserves every transferred byte, and the
/// parallel drive reproduces the sequential one bit-exactly.
#[test]
fn zero_cost_split_fleet_serves_everything_and_drives_match() {
    let accel = Toy;
    let workload = workload();
    let split_profiles = [
        DeviceProfile::uniform()
            .with_role(DeviceRole::Prefill)
            .with_host_link(f64::INFINITY),
        DeviceProfile::uniform().with_role(DeviceRole::Decode),
        DeviceProfile::uniform().with_role(DeviceRole::Decode),
    ];
    let decode_carrying = workload
        .requests
        .iter()
        .filter(|r| r.decode_len > 0)
        .count();
    for policy in DispatchPolicy::ALL {
        let mut mk =
            || -> Box<dyn mcbp_serve::Scheduler> { Box::new(mcbp_serve::PriorityScheduler::new()) };
        let (seq_report, seq_trace) = sim(&accel, None).run_fleet_profiles_traced(
            &workload,
            &split_profiles,
            policy,
            &mut mk,
        );
        let (par_report, par_trace) = sim(&accel, Some(3)).run_fleet_profiles_traced(
            &workload,
            &split_profiles,
            policy,
            &mut mk,
        );
        assert_eq!(seq_report, par_report, "drives diverged under {policy:?}");
        assert_eq!(seq_trace, par_trace, "traces diverged under {policy:?}");
        assert_eq!(seq_report.completed, workload.requests.len());
        // Exactly the decode-carrying requests crossed the link, and the
        // zero-cost link charged no time for them.
        assert_eq!(seq_report.handoff.handoffs_out as usize, decode_carrying);
        assert_eq!(
            seq_report.handoff.handoffs_in,
            seq_report.handoff.handoffs_out
        );
        assert_eq!(seq_report.handoff.bytes_in, seq_report.handoff.bytes_out);
        assert!(seq_report.handoff.bytes_out > 0);
        assert_eq!(seq_report.handoff.link_seconds, 0.0);
        // Decode lanes never hand out; the prefill lane never hands in.
        assert_eq!(seq_report.devices[0].handoff.handoffs_in, 0);
        assert_eq!(seq_report.devices[1].handoff.handoffs_out, 0);
        assert_eq!(seq_report.devices[2].handoff.handoffs_out, 0);
    }
}
