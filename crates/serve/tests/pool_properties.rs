//! Property-based tests for [`KvCachePool`] and [`SwapLedger`]: the
//! accounting invariants the serving simulator leans on, under arbitrary
//! legal reserve/grow/release/evict sequences.
//!
//! Raw `(op, id, bytes)` tuples from the strategy are interpreted against
//! a shadow model of the pool so every issued call is legal (the pool
//! panics on illegal calls by design — those paths have their own
//! `#[should_panic]` unit tests). The shadow model lets each property
//! cross-check the pool's global counters against an independent sum of
//! per-request state.

use std::collections::BTreeMap;

use mcbp_serve::{KvCachePool, SwapLedger};
use proptest::prelude::*;

/// Shadow of one request's ledger entry.
#[derive(Debug, Clone, Copy, Default)]
struct Shadow {
    reserved: u64,
    resident: u64,
}

/// Checks the pool's global counters against the shadow model and the
/// budget/ordering invariants.
fn check_invariants(
    pool: &KvCachePool,
    shadow: &BTreeMap<u64, Shadow>,
) -> Result<(), TestCaseError> {
    let reserved: u64 = shadow.values().map(|s| s.reserved).sum();
    let resident: u64 = shadow.values().map(|s| s.resident).sum();
    prop_assert_eq!(pool.reserved_bytes(), reserved);
    prop_assert_eq!(pool.resident_bytes(), resident);
    prop_assert!(pool.resident_bytes() <= pool.reserved_bytes());
    prop_assert!(pool.reserved_bytes() <= pool.budget_bytes());
    prop_assert_eq!(pool.in_flight(), shadow.len());
    for (id, s) in shadow {
        let entry = pool.reservation(*id).expect("shadowed request is live");
        prop_assert_eq!(entry.reserved_bytes, s.reserved);
        prop_assert_eq!(entry.resident_bytes, s.resident);
        prop_assert!(entry.resident_bytes <= entry.reserved_bytes);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Under arbitrary reserve/grow/release/evict sequences the pool never
    /// violates `resident <= reserved <= budget`, its global counters
    /// always equal the sum of its per-request ledger, release amounts
    /// come from the ledger (never underflowing), and the pool returns to
    /// `is_idle()` once every request drains.
    #[test]
    fn pool_invariants_hold_under_arbitrary_sequences(
        budget in 1u64..100_000,
        ops in collection::vec((0u8..4, 0u64..16, 1u64..40_000), 1..120),
    ) {
        let mut pool = KvCachePool::with_budget(budget);
        let mut ledger = SwapLedger::new();
        let mut shadow: BTreeMap<u64, Shadow> = BTreeMap::new();
        let mut next_id = 16u64; // fresh ids for re-admissions after release
        for (op, id_hint, bytes) in ops {
            match op {
                // Reserve a fresh id (re-using a hinted id only if free).
                0 => {
                    let id = if shadow.contains_key(&id_hint) {
                        next_id += 1;
                        next_id
                    } else {
                        id_hint
                    };
                    let admitted = pool.try_reserve(id, bytes);
                    let fits = pool.reserved_bytes() <= budget;
                    prop_assert!(fits, "reserve may never overshoot the budget");
                    if admitted {
                        shadow.insert(id, Shadow { reserved: bytes, resident: 0 });
                    } else {
                        // A refusal must be honest: the bytes really did
                        // not fit on top of what the shadow holds.
                        let held: u64 = shadow.values().map(|s| s.reserved).sum();
                        prop_assert!(held + bytes > budget);
                    }
                }
                // Grow a live request within its own headroom.
                1 => {
                    let picked = shadow
                        .keys()
                        .nth(id_hint as usize % shadow.len().max(1))
                        .copied();
                    if let Some(id) = picked {
                        let s = shadow.get_mut(&id).expect("picked live id");
                        let headroom = s.reserved - s.resident;
                        let grow = bytes.min(headroom);
                        if grow > 0 {
                            pool.grow_resident(id, grow);
                            s.resident += grow;
                        }
                    }
                }
                // Release (completion): freed amounts must match the shadow.
                2 => {
                    let picked = shadow
                        .keys()
                        .nth(id_hint as usize % shadow.len().max(1))
                        .copied();
                    if let Some(id) = picked {
                        let s = shadow.remove(&id).expect("picked live id");
                        let freed = pool.release(id);
                        prop_assert_eq!(freed.reserved_bytes, s.reserved);
                        prop_assert_eq!(freed.resident_bytes, s.resident);
                    }
                }
                // Evict (swap flavor): release and park the resident bytes
                // in the swap ledger; swapped bytes are conserved.
                _ => {
                    let picked = shadow
                        .keys()
                        .nth(id_hint as usize % shadow.len().max(1))
                        .copied();
                    if let Some(id) = picked {
                        let s = shadow.remove(&id).expect("picked live id");
                        let freed = pool.release(id);
                        prop_assert_eq!(freed.resident_bytes, s.resident);
                        if freed.resident_bytes > 0 {
                            ledger.swap_out(id, freed.resident_bytes);
                            prop_assert_eq!(ledger.swap_in(id), freed.resident_bytes);
                        }
                    }
                }
            }
            check_invariants(&pool, &shadow)?;
        }
        // Drain everything: the pool must come back to idle exactly.
        let live: Vec<u64> = shadow.keys().copied().collect();
        for id in live {
            let s = shadow.remove(&id).expect("live");
            let freed = pool.release(id);
            prop_assert_eq!(freed.reserved_bytes, s.reserved);
            prop_assert_eq!(freed.resident_bytes, s.resident);
        }
        prop_assert!(pool.is_idle());
        prop_assert_eq!(pool.reserved_bytes(), 0);
        prop_assert_eq!(pool.resident_bytes(), 0);
        prop_assert!(ledger.is_empty());
        prop_assert_eq!(ledger.total_out_bytes(), ledger.total_in_bytes());
    }

    /// Peak statistics are monotone high-water marks: they never decrease,
    /// and they bound every instantaneous level the run ever produced.
    #[test]
    fn pool_peaks_are_high_water_marks(
        budget in 1u64..50_000,
        ops in collection::vec((0u8..3, 1u64..20_000), 1..60),
    ) {
        let mut pool = KvCachePool::with_budget(budget);
        let mut live: Vec<u64> = Vec::new();
        let mut next = 0u64;
        let mut max_reserved_seen = 0u64;
        let mut max_resident_seen = 0u64;
        for (op, bytes) in ops {
            match op {
                0 => {
                    next += 1;
                    if pool.try_reserve(next, bytes) {
                        live.push(next);
                    }
                }
                1 => {
                    if let Some(&id) = live.first() {
                        let e = pool.reservation(id).expect("live");
                        let grow = bytes.min(e.reserved_bytes - e.resident_bytes);
                        if grow > 0 {
                            pool.grow_resident(id, grow);
                        }
                    }
                }
                _ => {
                    if let Some(id) = live.pop() {
                        pool.release(id);
                    }
                }
            }
            max_reserved_seen = max_reserved_seen.max(pool.reserved_bytes());
            max_resident_seen = max_resident_seen.max(pool.resident_bytes());
            prop_assert_eq!(pool.peak_reserved_bytes(), max_reserved_seen);
            prop_assert_eq!(pool.peak_resident_bytes(), max_resident_seen);
            prop_assert!(pool.peak_reserved_bytes() <= pool.budget_bytes());
        }
    }
}
