//! Property-based tests for [`KvCachePool`] and [`SwapLedger`]: the
//! accounting invariants the serving simulator leans on, under arbitrary
//! legal reserve/grow/release/evict sequences.
//!
//! Raw `(op, id, bytes)` tuples from the strategy are interpreted against
//! a shadow model of the pool so every issued call is legal (the pool
//! panics on illegal calls by design — those paths have their own
//! `#[should_panic]` unit tests). The shadow model lets each property
//! cross-check the pool's global counters against an independent sum of
//! per-request state.

use std::collections::BTreeMap;

use mcbp_serve::{KvCachePool, PrefixId, SwapLedger};
use proptest::prelude::*;

/// Shadow of one request's ledger entry.
#[derive(Debug, Clone, Copy, Default)]
struct Shadow {
    reserved: u64,
    resident: u64,
}

/// Checks the pool's global counters against the shadow model and the
/// budget/ordering invariants.
fn check_invariants(
    pool: &KvCachePool,
    shadow: &BTreeMap<u64, Shadow>,
) -> Result<(), TestCaseError> {
    let reserved: u64 = shadow.values().map(|s| s.reserved).sum();
    let resident: u64 = shadow.values().map(|s| s.resident).sum();
    prop_assert_eq!(pool.reserved_bytes(), reserved);
    prop_assert_eq!(pool.resident_bytes(), resident);
    prop_assert!(pool.resident_bytes() <= pool.reserved_bytes());
    prop_assert!(pool.reserved_bytes() <= pool.budget_bytes());
    prop_assert_eq!(pool.in_flight(), shadow.len());
    for (id, s) in shadow {
        let entry = pool.reservation(*id).expect("shadowed request is live");
        prop_assert_eq!(entry.reserved_bytes, s.reserved);
        prop_assert_eq!(entry.resident_bytes, s.resident);
        prop_assert!(entry.resident_bytes <= entry.reserved_bytes);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Under arbitrary reserve/grow/release/evict sequences the pool never
    /// violates `resident <= reserved <= budget`, its global counters
    /// always equal the sum of its per-request ledger, release amounts
    /// come from the ledger (never underflowing), and the pool returns to
    /// `is_idle()` once every request drains.
    #[test]
    fn pool_invariants_hold_under_arbitrary_sequences(
        budget in 1u64..100_000,
        ops in collection::vec((0u8..4, 0u64..16, 1u64..40_000), 1..120),
    ) {
        let mut pool = KvCachePool::with_budget(budget);
        let mut ledger = SwapLedger::new();
        let mut shadow: BTreeMap<u64, Shadow> = BTreeMap::new();
        let mut next_id = 16u64; // fresh ids for re-admissions after release
        for (op, id_hint, bytes) in ops {
            match op {
                // Reserve a fresh id (re-using a hinted id only if free).
                0 => {
                    let id = if shadow.contains_key(&id_hint) {
                        next_id += 1;
                        next_id
                    } else {
                        id_hint
                    };
                    let admitted = pool.try_reserve(id, bytes);
                    let fits = pool.reserved_bytes() <= budget;
                    prop_assert!(fits, "reserve may never overshoot the budget");
                    if admitted {
                        shadow.insert(id, Shadow { reserved: bytes, resident: 0 });
                    } else {
                        // A refusal must be honest: the bytes really did
                        // not fit on top of what the shadow holds.
                        let held: u64 = shadow.values().map(|s| s.reserved).sum();
                        prop_assert!(held + bytes > budget);
                    }
                }
                // Grow a live request within its own headroom.
                1 => {
                    let picked = shadow
                        .keys()
                        .nth(id_hint as usize % shadow.len().max(1))
                        .copied();
                    if let Some(id) = picked {
                        let s = shadow.get_mut(&id).expect("picked live id");
                        let headroom = s.reserved - s.resident;
                        let grow = bytes.min(headroom);
                        if grow > 0 {
                            pool.grow_resident(id, grow);
                            s.resident += grow;
                        }
                    }
                }
                // Release (completion): freed amounts must match the shadow.
                2 => {
                    let picked = shadow
                        .keys()
                        .nth(id_hint as usize % shadow.len().max(1))
                        .copied();
                    if let Some(id) = picked {
                        let s = shadow.remove(&id).expect("picked live id");
                        let freed = pool.release(id);
                        prop_assert_eq!(freed.reserved_bytes, s.reserved);
                        prop_assert_eq!(freed.resident_bytes, s.resident);
                    }
                }
                // Evict (swap flavor): release and park the resident bytes
                // in the swap ledger; swapped bytes are conserved.
                _ => {
                    let picked = shadow
                        .keys()
                        .nth(id_hint as usize % shadow.len().max(1))
                        .copied();
                    if let Some(id) = picked {
                        let s = shadow.remove(&id).expect("picked live id");
                        let freed = pool.release(id);
                        prop_assert_eq!(freed.resident_bytes, s.resident);
                        if freed.resident_bytes > 0 {
                            ledger.swap_out(id, freed.resident_bytes);
                            prop_assert_eq!(ledger.swap_in(id), freed.resident_bytes);
                        }
                    }
                }
            }
            check_invariants(&pool, &shadow)?;
        }
        // Drain everything: the pool must come back to idle exactly.
        let live: Vec<u64> = shadow.keys().copied().collect();
        for id in live {
            let s = shadow.remove(&id).expect("live");
            let freed = pool.release(id);
            prop_assert_eq!(freed.reserved_bytes, s.reserved);
            prop_assert_eq!(freed.resident_bytes, s.resident);
        }
        prop_assert!(pool.is_idle());
        prop_assert_eq!(pool.reserved_bytes(), 0);
        prop_assert_eq!(pool.resident_bytes(), 0);
        prop_assert!(ledger.is_empty());
        prop_assert_eq!(ledger.total_out_bytes(), ledger.total_in_bytes());
    }

    /// The resident-prefix ledger under arbitrary legal
    /// promote/ref/unref/release/reclaim interleavings: refcounts and
    /// bytes are conserved (pool totals always equal request ledger +
    /// prefix ledger sums), pinned prefixes (refs > 0) are never
    /// reclaimed, and reclamation frees exactly the entry's bytes.
    #[test]
    fn prefix_ledger_conserves_bytes_and_pins_referenced_entries(
        budget in 10_000u64..200_000,
        ops in collection::vec((0u8..5, 0u64..6, 1u64..8_000), 1..120),
    ) {
        let mut pool = KvCachePool::with_budget(budget);
        // Shadows: requests -> (reserved, resident); prefixes -> (bytes, refs).
        let mut requests: BTreeMap<u64, Shadow> = BTreeMap::new();
        let mut prefixes: BTreeMap<PrefixId, (u64, usize)> = BTreeMap::new();
        let mut next_id = 64u64;
        for (op, hint, bytes) in ops {
            match op {
                // Admit a fresh request and materialize all its bytes.
                0 => {
                    next_id += 1;
                    if pool.try_reserve(next_id, bytes) {
                        pool.grow_resident(next_id, bytes);
                        requests.insert(next_id, Shadow { reserved: bytes, resident: bytes });
                    }
                }
                // Promote a prefix out of a fully-materialized request
                // (create or shed — the pool handles both).
                1 => {
                    let picked = requests
                        .iter()
                        .filter(|(_, s)| s.resident > 0)
                        .nth(hint as usize % requests.len().max(1))
                        .map(|(id, s)| (*id, *s));
                    if let Some((rid, s)) = picked {
                        let pid = hint % 3; // few ids, so shed paths trigger
                        let share = match prefixes.get(&pid) {
                            // An existing entry fixes the promotable shape.
                            Some(&(b, _)) if b <= s.resident => b,
                            Some(_) => continue,
                            None => (s.resident / 2).max(1),
                        };
                        pool.promote_prefix(rid, pid, 16, share);
                        let sh = requests.get_mut(&rid).expect("live");
                        sh.reserved -= share;
                        sh.resident -= share;
                        let entry = prefixes.entry(pid).or_insert((share, 0));
                        entry.1 += 1;
                    }
                }
                // Unref (and maybe re-ref) a prefix.
                2 => {
                    let picked = prefixes
                        .iter()
                        .filter(|(_, (_, refs))| *refs > 0)
                        .nth(hint as usize % prefixes.len().max(1))
                        .map(|(id, _)| *id);
                    if let Some(pid) = picked {
                        pool.unref_prefix(pid);
                        prefixes.get_mut(&pid).expect("present").1 -= 1;
                        if hint % 2 == 0 {
                            pool.ref_prefix(pid);
                            prefixes.get_mut(&pid).expect("present").1 += 1;
                        }
                    }
                }
                // Release a request (its prefix refs are the caller's job;
                // this model tracks them separately).
                3 => {
                    let picked = requests
                        .keys()
                        .nth(hint as usize % requests.len().max(1))
                        .copied();
                    if let Some(rid) = picked {
                        let s = requests.remove(&rid).expect("live");
                        let freed = pool.release(rid);
                        prop_assert_eq!(freed.reserved_bytes, s.reserved);
                        prop_assert_eq!(freed.resident_bytes, s.resident);
                    }
                }
                // Reclaim one unreferenced prefix; pinned entries survive.
                _ => {
                    let reclaimable: Vec<PrefixId> = prefixes
                        .iter()
                        .filter(|(_, (_, refs))| *refs == 0)
                        .map(|(id, _)| *id)
                        .collect();
                    match pool.reclaim_unreferenced_prefix(None) {
                        Some((pid, freed)) => {
                            // Reclamation picks the fewest-token entry,
                            // falling back to the lowest id; every entry
                            // here was promoted at 16 tokens, so the id
                            // tie-break decides.
                            prop_assert_eq!(Some(&pid), reclaimable.first());
                            let (bytes, refs) = prefixes.remove(&pid).expect("shadowed");
                            prop_assert_eq!(refs, 0, "pinned prefixes are never reclaimed");
                            prop_assert_eq!(freed, bytes);
                        }
                        None => prop_assert!(reclaimable.is_empty()),
                    }
                }
            }
            // Conservation: pool totals = request ledger + prefix ledger.
            let req_reserved: u64 = requests.values().map(|s| s.reserved).sum();
            let req_resident: u64 = requests.values().map(|s| s.resident).sum();
            let pre_bytes: u64 = prefixes.values().map(|(b, _)| b).sum();
            prop_assert_eq!(pool.reserved_bytes(), req_reserved + pre_bytes);
            prop_assert_eq!(pool.resident_bytes(), req_resident + pre_bytes);
            prop_assert!(pool.reserved_bytes() <= pool.budget_bytes());
            prop_assert_eq!(pool.prefix_bytes(), pre_bytes);
            for (pid, (bytes, refs)) in &prefixes {
                let e = pool.prefix(*pid).expect("shadowed prefix is resident");
                prop_assert_eq!(e.bytes, *bytes);
                prop_assert_eq!(e.refs, *refs);
            }
        }
        // Drain: release every request, unref every reference, reclaim
        // every entry — the pool must come back to exactly zero.
        for (rid, _) in std::mem::take(&mut requests) {
            pool.release(rid);
        }
        for (pid, (_, refs)) in &prefixes {
            for _ in 0..*refs {
                pool.unref_prefix(*pid);
            }
        }
        while pool.reclaim_unreferenced_prefix(None).is_some() {}
        prop_assert!(pool.is_idle());
        prop_assert_eq!(pool.reserved_bytes(), 0);
        prop_assert_eq!(pool.resident_bytes(), 0);
        prop_assert_eq!(pool.prefix_bytes(), 0);
    }

    /// Peak statistics are monotone high-water marks: they never decrease,
    /// and they bound every instantaneous level the run ever produced.
    #[test]
    fn pool_peaks_are_high_water_marks(
        budget in 1u64..50_000,
        ops in collection::vec((0u8..3, 1u64..20_000), 1..60),
    ) {
        let mut pool = KvCachePool::with_budget(budget);
        let mut live: Vec<u64> = Vec::new();
        let mut next = 0u64;
        let mut max_reserved_seen = 0u64;
        let mut max_resident_seen = 0u64;
        for (op, bytes) in ops {
            match op {
                0 => {
                    next += 1;
                    if pool.try_reserve(next, bytes) {
                        live.push(next);
                    }
                }
                1 => {
                    if let Some(&id) = live.first() {
                        let e = pool.reservation(id).expect("live");
                        let grow = bytes.min(e.reserved_bytes - e.resident_bytes);
                        if grow > 0 {
                            pool.grow_resident(id, grow);
                        }
                    }
                }
                _ => {
                    if let Some(id) = live.pop() {
                        pool.release(id);
                    }
                }
            }
            max_reserved_seen = max_reserved_seen.max(pool.reserved_bytes());
            max_resident_seen = max_resident_seen.max(pool.resident_bytes());
            prop_assert_eq!(pool.peak_reserved_bytes(), max_reserved_seen);
            prop_assert_eq!(pool.peak_resident_bytes(), max_resident_seen);
            prop_assert!(pool.peak_reserved_bytes() <= pool.budget_bytes());
        }
    }
}

/// Promotes one prefix out of a fresh fully-materialized request and
/// immediately drops the request and its reference, leaving the entry
/// warm (unreferenced) in the pool.
fn park_warm_prefix(pool: &mut KvCachePool, rid: u64, pid: PrefixId, tokens: usize, bytes: u64) {
    assert!(pool.try_reserve(rid, bytes + 1));
    pool.grow_resident(rid, bytes + 1);
    pool.promote_prefix(rid, pid, tokens, bytes);
    pool.release(rid);
    pool.unref_prefix(pid);
}

/// Regression for the reclamation order: eviction targets the resident
/// prefix with the cheapest expected re-prefill cost (fewest tokens),
/// not the lowest id. Lower ids deliberately hold *more* tokens here, so
/// the old id-ordered reclaim would evict the most expensive entry first.
#[test]
fn reclamation_prefers_cheapest_reprefill_prefix() {
    let mut pool = KvCachePool::with_budget(100_000);
    park_warm_prefix(&mut pool, 1, 1, 512, 2_000); // costliest to rebuild
    park_warm_prefix(&mut pool, 2, 2, 64, 500); // cheapest
    park_warm_prefix(&mut pool, 3, 3, 128, 800);
    // A pinned entry with even fewer tokens must still be skipped.
    assert!(pool.try_reserve(4, 101));
    pool.grow_resident(4, 101);
    pool.promote_prefix(4, 4, 8, 100);

    assert_eq!(
        pool.reclaim_unreferenced_prefix(None),
        Some((2, 500)),
        "64-token entry goes first despite its higher id"
    );
    assert_eq!(pool.reclaim_unreferenced_prefix(None), Some((3, 800)));
    // Sparing the cheapest remaining entry redirects to the next one.
    assert_eq!(pool.reclaim_unreferenced_prefix(Some(1)), None);
    assert_eq!(pool.reclaim_unreferenced_prefix(None), Some((1, 2_000)));
    assert_eq!(pool.prefix_bytes(), 100, "only the pinned entry survives");
}

/// Equal-cost entries fall back to the lowest id so reclamation stays
/// deterministic.
#[test]
fn equal_cost_prefixes_reclaim_lowest_id_first() {
    let mut pool = KvCachePool::with_budget(100_000);
    park_warm_prefix(&mut pool, 1, 9, 256, 900);
    park_warm_prefix(&mut pool, 2, 5, 256, 700);
    assert_eq!(pool.reclaim_unreferenced_prefix(None), Some((5, 700)));
    assert_eq!(pool.reclaim_unreferenced_prefix(None), Some((9, 900)));
}
