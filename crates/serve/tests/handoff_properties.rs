//! Property-based byte conservation for disaggregated KV handoffs: over
//! arbitrary traces, fleet shapes, dispatch policies, eviction policies
//! (drop-and-recompute and swap racing the handoffs), pool pressure, and
//! link speeds, every byte that leaves a prefill device's pool is
//! accounted for — it is either still in flight on the link or already
//! re-reserved (or dropped with a record) on the decode device — at every
//! point of the recorded event stream, and nothing is in flight once the
//! run drains.

use std::sync::OnceLock;

use mcbp_model::LlmConfig;
use mcbp_serve::{
    DeviceProfile, DeviceRole, DispatchPolicy, PreemptConfig, Priority, Request, RequestId,
    Scheduler, ServeConfig, ServeSim, SloSpec, TraceEvent, Workload,
};
use mcbp_workloads::{
    Accelerator, PhaseCost, RunReport, SparsityProfile, Task, TraceContext, WeightGenerator,
};
use proptest::prelude::*;

/// Analytic accelerator with the qualitative serving shape (see
/// `parallel_drive_properties.rs`): exact arithmetic, fast enough for
/// hundreds of simulated fleet runs.
struct Toy;

impl Accelerator for Toy {
    fn name(&self) -> &str {
        "toy"
    }

    fn run(&self, ctx: &TraceContext) -> RunReport {
        let b = ctx.batch as f64;
        RunReport {
            prefill: PhaseCost {
                gemm_cycles: 10.0 * ctx.task.prompt_len as f64 * b,
                compute_pj: ctx.task.prompt_len as f64 * b,
                ..Default::default()
            },
            decode: PhaseCost {
                weight_load_cycles: 1_000_000.0,
                kv_load_cycles: 100.0 * ctx.task.prompt_len as f64 * b * ctx.task.decode_len as f64,
                compute_pj: b,
                ..Default::default()
            },
        }
    }
}

fn template() -> TraceContext {
    static TEMPLATE: OnceLock<TraceContext> = OnceLock::new();
    TEMPLATE
        .get_or_init(|| {
            let model = LlmConfig::opt1b3();
            let gen = WeightGenerator::for_model(&model);
            let profile = SparsityProfile::measure(&gen.quantized_sample(16, 64, 1), 4);
            TraceContext {
                model,
                task: Task::cola(),
                batch: 1,
                weight_profile: profile,
                attention_keep: 0.3,
            }
        })
        .clone()
}

/// One raw generated request: `((prompt_len, decode_len, arrival_gap),
/// interactive)`.
type RawRequest = ((usize, usize, u32), u8);

fn workload_from(raw: &[RawRequest], closed_concurrency: Option<usize>) -> Workload {
    let mut arrival = 0.0f64;
    let requests = raw
        .iter()
        .enumerate()
        .map(|(i, &((prompt_len, decode_len, gap), class_bit))| {
            arrival += f64::from(gap);
            let closed_tail = closed_concurrency.is_some_and(|c| i >= c);
            Request {
                id: i as RequestId,
                arrival_cycle: if closed_tail { f64::INFINITY } else { arrival },
                prompt_len,
                decode_len,
                task_name: "prop",
                priority: if class_bit == 1 {
                    Priority::Interactive
                } else {
                    Priority::Batch
                },
                slo: SloSpec::none(),
                prefix: None,
            }
        })
        .collect();
    Workload {
        requests,
        closed_loop: closed_concurrency,
    }
}

/// One recorded handoff paired with its landing on the destination.
struct Flight {
    out_cycle: f64,
    in_cycle: f64,
    bytes: u64,
}

/// Walks the event stream and pairs every `Handoff` with the first
/// admission or drop of that request on the destination device — the
/// cycle at which the transferred bytes stop being "in flight". Panics
/// (failing the test) on any unlanded or ill-ordered handoff.
fn flights(events: &[TraceEvent]) -> Vec<Flight> {
    events
        .iter()
        .filter_map(|ev| {
            let &TraceEvent::Handoff {
                id,
                from,
                to,
                cycle,
                arrival_cycle,
                bytes,
            } = ev
            else {
                return None;
            };
            assert_ne!(from, to, "a handoff never targets its own source");
            assert!(
                arrival_cycle >= cycle,
                "handoff {id} arrives before it departs"
            );
            // The landing is the *earliest* admission or drop of `id` on
            // the destination: stage-1 routing never placed `id` there,
            // so every later admit is a preemption resume.
            let landing = events
                .iter()
                .filter_map(|ev| match *ev {
                    TraceEvent::Admit {
                        device,
                        cycle,
                        id: aid,
                        resumed,
                        ..
                    } if device == to && aid == id => {
                        assert!(resumed, "a handoff landing admits as a resume");
                        Some(cycle)
                    }
                    TraceEvent::Drop {
                        device,
                        cycle,
                        id: did,
                    } if device == to && did == id => Some(cycle),
                    _ => None,
                })
                .fold(f64::INFINITY, f64::min);
            assert!(
                landing.is_finite(),
                "handoff of request {id} to device {to} never landed"
            );
            assert!(
                landing >= arrival_cycle,
                "request {id} landed at {landing} before its link arrival {arrival_cycle}"
            );
            Some(Flight {
                out_cycle: cycle,
                in_cycle: landing,
                bytes,
            })
        })
        .collect()
}

/// The conservation invariant: replay the flights on a timeline and check
/// that in-flight bytes are non-negative at every instant and zero at the
/// end — bytes released on the prefill pool equal bytes in flight plus
/// bytes landed on the decode side, at every cycle.
fn assert_conserved(flights: &[Flight]) -> u64 {
    // +bytes at departure, -bytes at landing; at equal cycles process
    // departures first so transient in-flight mass is never understated.
    let mut deltas: Vec<(f64, i32, i64)> = Vec::with_capacity(flights.len() * 2);
    for f in flights {
        deltas.push((f.out_cycle, 0, f.bytes as i64));
        deltas.push((f.in_cycle, 1, -(f.bytes as i64)));
    }
    deltas.sort_by(|a, b| a.partial_cmp(b).expect("finite cycles"));
    let mut in_flight = 0i64;
    let mut peak = 0i64;
    for (cycle, _, delta) in deltas {
        in_flight += delta;
        peak = peak.max(in_flight);
        assert!(
            in_flight >= 0,
            "in-flight bytes went negative ({in_flight}) at cycle {cycle}"
        );
    }
    assert_eq!(in_flight, 0, "bytes still in flight after the run drained");
    peak as u64
}

fn make_scheduler(priority: bool) -> Box<dyn Scheduler> {
    if priority {
        Box::new(mcbp_serve::PriorityScheduler::new())
    } else {
        Box::new(mcbp_serve::ContinuousBatchScheduler::new())
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The satellite conservation property from the issue: at every
    /// recorded cycle, bytes released on the prefill pool equal bytes in
    /// flight plus bytes landed on the decode pool — including cases
    /// where drop-and-recompute or swap preemption races a handoff on
    /// the destination, and where the destination pool is too small and
    /// the handoff drops on arrival.
    #[test]
    fn handoff_bytes_are_conserved_at_every_cycle(
        raw in proptest::collection::vec(
            ((1usize..400, 0usize..10, 0u32..2_000_000), 0u8..2),
            1..20,
        ),
        devices in 2usize..=4,
        split in 1usize..=3,
        policy_ix in 0usize..DispatchPolicy::ALL.len(),
        priority_sched in 0u8..2,
        evict in 0u8..3,
        tight_pool in 0u8..2,
        zero_link in 0u8..2,
        closed in 0u8..2,
        concurrency in 1usize..6,
    ) {
        let policy = DispatchPolicy::ALL[policy_ix];
        let workload = workload_from(&raw, (closed == 1).then_some(concurrency.min(raw.len())));
        let accel = Toy;
        let budget = (tight_pool == 1).then(|| {
            // Roughly two of the largest requests fit, so admission on
            // the decode side stalls behind in-flight handoffs and the
            // eviction policies get victims to preempt.
            mcbp_serve::request_kv_bytes(&template().model, 400 + 10, 0.3) * 2
        });
        let preempt = match evict {
            0 => PreemptConfig::default(),
            1 => PreemptConfig::drop_recompute(),
            _ => PreemptConfig::swap(),
        };
        let cfg = ServeConfig {
            kv_budget_bytes: budget,
            preempt,
            ..ServeConfig::default()
        };
        let sim = ServeSim::try_new(&accel, template(), cfg).expect("valid config");
        let split = split.min(devices - 1);
        let profiles: Vec<DeviceProfile> = (0..devices)
            .map(|i| {
                let role = if i < split { DeviceRole::Prefill } else { DeviceRole::Decode };
                let p = DeviceProfile::uniform().with_role(role);
                if zero_link == 1 { p.with_host_link(f64::INFINITY) } else { p }
            })
            .collect();
        let mut mk = || make_scheduler(priority_sched == 1);
        let (report, trace) =
            sim.run_fleet_profiles_traced(&workload, &profiles, policy, &mut mk);

        // Every request is accounted for.
        prop_assert_eq!(report.completed + report.dropped, raw.len());

        // Report-level conservation: the run drained, so every byte that
        // left a prefill pool landed (or was dropped with a record) on a
        // decode device — per handoff and per byte.
        let totals = &report.handoff;
        prop_assert_eq!(totals.handoffs_out, totals.handoffs_in);
        prop_assert_eq!(totals.bytes_out, totals.bytes_in);

        // Every decode-carrying request that survived its prompt hands
        // off exactly once: no Prefill-role device can decode.
        let handed = flights(&trace.events);
        prop_assert_eq!(handed.len() as u64, totals.handoffs_out);

        // Cycle-by-cycle conservation over the recorded timeline. The
        // ledger's peak measures custody in *execution order* while the
        // trace walk measures *simulated time* — device clocks advance
        // non-monotonically relative to each other, so the two peaks can
        // differ in either direction; both are bounded by the total and
        // both are non-zero exactly when anything crossed the link.
        let peak = assert_conserved(&handed);
        prop_assert!(peak <= totals.bytes_out);
        prop_assert!(totals.peak_in_flight_bytes <= totals.bytes_out);
        prop_assert_eq!(peak > 0, totals.bytes_out > 0);
        prop_assert_eq!(totals.peak_in_flight_bytes > 0, totals.bytes_out > 0);

        // Per-lane attribution: outbound bytes sit on prefill lanes,
        // inbound bytes on decode lanes, and the lanes sum to the totals.
        let mut lane_out = 0u64;
        let mut lane_in = 0u64;
        for (i, lane) in report.devices.iter().enumerate() {
            if i < split {
                prop_assert_eq!(lane.handoff.handoffs_in, 0);
            } else {
                prop_assert_eq!(lane.handoff.handoffs_out, 0);
            }
            lane_out += lane.handoff.bytes_out;
            lane_in += lane.handoff.bytes_in;
        }
        prop_assert_eq!(lane_out, totals.bytes_out);
        prop_assert_eq!(lane_in, totals.bytes_in);

        // A zero-cost link lands every handoff the cycle it departs.
        if zero_link == 1 {
            for f in &handed {
                prop_assert!((f.out_cycle - f.in_cycle).abs() < 1e-9 || f.in_cycle >= f.out_cycle);
            }
            for ev in &trace.events {
                if let TraceEvent::Handoff { cycle, arrival_cycle, .. } = *ev {
                    prop_assert!((arrival_cycle - cycle).abs() < 1e-12);
                }
            }
        }
    }
}

/// A deterministic non-vacuousness check: a `[Prefill, Decode]` pair
/// actually hands off every decode-carrying request, conserving bytes,
/// and a drop-and-recompute preemption mid-run never double-frees a
/// victim that raced a handoff.
#[test]
fn split_pair_hands_off_every_decode_request() {
    let accel = Toy;
    let cfg = ServeConfig {
        preempt: PreemptConfig::drop_recompute(),
        // Tight enough that landed handoffs contend with each other.
        kv_budget_bytes: Some(mcbp_serve::request_kv_bytes(&template().model, 300, 0.3) * 3),
        ..ServeConfig::default()
    };
    let sim = ServeSim::try_new(&accel, template(), cfg).expect("valid config");
    let raw: Vec<RawRequest> = (0..12)
        .map(|i| ((64 + 17 * i, 4, 50_000), (i % 3 == 0) as u8))
        .collect();
    let workload = workload_from(&raw, None);
    let profiles = [
        DeviceProfile::uniform().with_role(DeviceRole::Prefill),
        DeviceProfile::uniform().with_role(DeviceRole::Decode),
    ];
    let (report, trace) = sim.run_fleet_profiles_traced(
        &workload,
        &profiles,
        DispatchPolicy::RoundRobin,
        &mut || make_scheduler(true),
    );
    assert_eq!(report.completed + report.dropped, raw.len());
    let totals = &report.handoff;
    // Every request carries decode work, so every one that survived its
    // prompt crossed the link exactly once.
    assert_eq!(totals.handoffs_out, raw.len() as u64);
    assert_eq!(totals.handoffs_in, totals.handoffs_out);
    assert_eq!(totals.bytes_out, totals.bytes_in);
    assert!(totals.bytes_out > 0);
    assert!(totals.link_seconds > 0.0);
    let handed = flights(&trace.events);
    assert_eq!(handed.len(), raw.len());
    assert_conserved(&handed);
}
