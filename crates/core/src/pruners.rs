use mcbp_bgpp::{BgppConfig, ProgressivePredictor, ValueTopK};
use mcbp_bitslice::{BitPlanes, IntMatrix};
use mcbp_model::{AttentionPruner, PrunerDecision};

/// Plugs the bit-grained progressive predictor into the functional
/// transformer's attention (the Fig 6 online flow): for each query, key
/// bit-planes are streamed MSB-first and trivial keys are dropped early.
///
/// # Example
///
/// ```
/// use mcbp::BgppPruner;
/// use mcbp::bgpp::BgppConfig;
/// use mcbp::model::{AttentionPruner, Transformer, TransformerConfig, QuantTransformer};
/// use mcbp::quant::Calibration;
///
/// let model = Transformer::random(TransformerConfig::tiny(), 1);
/// let tokens: Vec<usize> = (0..16).map(|i| i % 90).collect();
/// let quant = QuantTransformer::quantize(&model, &tokens, 8, Calibration::MinMax);
/// let pruner = BgppPruner::standard();
/// let (_logits, stats) = quant.forward(&tokens, &pruner);
/// assert!(stats.keys_kept <= stats.keys_total);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BgppPruner {
    predictor: ProgressivePredictor,
}

impl BgppPruner {
    /// Creates a pruner from a BGPP configuration.
    #[must_use]
    pub fn new(cfg: BgppConfig) -> Self {
        BgppPruner {
            predictor: ProgressivePredictor::new(cfg),
        }
    }

    /// The paper's standard operating point (α = 0.55, no accuracy loss
    /// target).
    #[must_use]
    pub fn standard() -> Self {
        Self::new(BgppConfig::standard())
    }

    /// The aggressive operating point (α = 0.45, ≤ 1 % loss target).
    #[must_use]
    pub fn aggressive() -> Self {
        Self::new(BgppConfig::aggressive())
    }

    /// A pruner with an explicit per-round α (the Fig 24a sweep knob).
    #[must_use]
    pub fn with_alpha(alpha: f32) -> Self {
        Self::new(BgppConfig {
            alpha: vec![alpha],
            ..BgppConfig::standard()
        })
    }
}

impl AttentionPruner for BgppPruner {
    fn select(&self, q: &[i32], keys: &IntMatrix, score_scale: f32) -> PrunerDecision {
        // In hardware the K cache is already stored as bit planes ("BL K
        // cache", Fig 6); decomposing here models that storage format.
        let planes = BitPlanes::from_matrix(keys);
        let out = self.predictor.predict(q, &planes, score_scale);
        PrunerDecision {
            kept: out.survivors,
            bits_fetched: out.stats.k_bits_fetched,
        }
    }
}

/// The value-level top-k baseline as a pruner (4-bit MSB estimate over all
/// keys, keep a fixed fraction) — the comparison point of Fig 5(e–g) and
/// Table 2's conventional-top-k rows.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ValueTopKPruner {
    /// Estimation precision in bits.
    pub est_bits: usize,
    /// Fraction of keys to keep (at least one key is always kept).
    pub keep_fraction: f64,
}

impl ValueTopKPruner {
    /// Creates the baseline pruner.
    ///
    /// # Panics
    ///
    /// Panics if `keep_fraction` is outside `(0, 1]`.
    #[must_use]
    pub fn new(est_bits: usize, keep_fraction: f64) -> Self {
        assert!(
            keep_fraction > 0.0 && keep_fraction <= 1.0,
            "invalid keep fraction"
        );
        ValueTopKPruner {
            est_bits,
            keep_fraction,
        }
    }
}

impl AttentionPruner for ValueTopKPruner {
    fn select(&self, q: &[i32], keys: &IntMatrix, _score_scale: f32) -> PrunerDecision {
        let k = ((keys.rows() as f64 * self.keep_fraction).ceil() as usize).max(1);
        let planes = BitPlanes::from_matrix(keys);
        let out = ValueTopK::new(self.est_bits, k).predict(q, &planes);
        PrunerDecision {
            kept: out.selected,
            bits_fetched: out.k_bits_fetched,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_keys() -> IntMatrix {
        IntMatrix::from_flat(
            8,
            6,
            2,
            vec![100, 100, -90, -90, 5, 5, 90, 90, 0, 0, -5, -5],
        )
        .unwrap()
    }

    #[test]
    fn bgpp_pruner_keeps_strong_keys() {
        let pruner = BgppPruner::with_alpha(0.6);
        let d = pruner.select(&[7, 7], &toy_keys(), 0.05);
        assert!(d.kept.contains(&0), "strongest key must survive");
        assert!(!d.kept.contains(&1), "most negative key must be dropped");
        assert!(d.bits_fetched > 0);
    }

    #[test]
    fn value_pruner_keeps_exact_fraction() {
        let pruner = ValueTopKPruner::new(4, 0.5);
        let d = pruner.select(&[7, 7], &toy_keys(), 0.05);
        assert_eq!(d.kept.len(), 3);
    }

    #[test]
    fn bgpp_fetches_fewer_bits_than_value_level() {
        let keys = toy_keys();
        let bgpp = BgppPruner::with_alpha(0.3).select(&[7, 7], &keys, 0.05);
        let value = ValueTopKPruner::new(4, 0.5).select(&[7, 7], &keys, 0.05);
        assert!(bgpp.bits_fetched <= value.bits_fetched + keys.cols() as u64 * keys.rows() as u64);
    }

    #[test]
    #[should_panic(expected = "invalid keep fraction")]
    fn value_pruner_validates_fraction() {
        let _ = ValueTopKPruner::new(4, 0.0);
    }
}
