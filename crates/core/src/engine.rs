use mcbp_bstc::{EncodedWeights, PlaneSelection};
use mcbp_model::LlmConfig;
use mcbp_sim::{McbpConfig, McbpSim, UnitEnergy};
use mcbp_workloads::{
    Accelerator, RunReport, SparsityProfile, Task, TraceContext, WeightGenerator,
};

/// High-level MCBP engine for one model: owns the calibrated synthetic
/// weights, their measured sparsity profile, and a configured simulator.
///
/// # Example
///
/// ```
/// use mcbp::Engine;
/// use mcbp::model::LlmConfig;
/// use mcbp::workloads::Task;
///
/// let engine = Engine::new(LlmConfig::opt1b3(), 7);
/// let dense = engine.evaluate(&Task::mnli(), 1, 1.0);
/// let sparse = engine.evaluate(&Task::mnli(), 1, 0.3);
/// assert!(sparse.total_cycles() <= dense.total_cycles());
/// ```
pub struct Engine {
    model: LlmConfig,
    generator: WeightGenerator,
    profile: SparsityProfile,
    sim: McbpSim,
    seed: u64,
}

impl Engine {
    /// Builds an engine with the default accelerator configuration.
    #[must_use]
    pub fn new(model: LlmConfig, seed: u64) -> Self {
        Self::with_config(model, McbpConfig::default(), seed)
    }

    /// Builds an engine with an explicit accelerator configuration
    /// (ablations, scaled arrays, alternative BGPP operating points).
    #[must_use]
    pub fn with_config(model: LlmConfig, cfg: McbpConfig, seed: u64) -> Self {
        let generator = WeightGenerator::for_model(&model);
        let sample = generator.quantized_sample(64, 1024, seed);
        let profile = SparsityProfile::measure(&sample, cfg.group_size);
        Engine {
            model,
            generator,
            profile,
            sim: McbpSim::new(cfg),
            seed,
        }
    }

    /// The model configuration.
    #[must_use]
    pub fn model(&self) -> &LlmConfig {
        &self.model
    }

    /// The measured weight sparsity profile driving the simulator.
    #[must_use]
    pub fn weight_profile(&self) -> &SparsityProfile {
        &self.profile
    }

    /// The synthetic weight generator calibrated for this model.
    #[must_use]
    pub fn generator(&self) -> &WeightGenerator {
        &self.generator
    }

    /// The underlying simulator.
    #[must_use]
    pub fn simulator(&self) -> &McbpSim {
        &self.sim
    }

    /// Builds the trace context for a workload at an attention-sparsity
    /// operating point (`keep` = fraction of KV pairs retained).
    #[must_use]
    pub fn context(&self, task: &Task, batch: usize, keep: f64) -> TraceContext {
        TraceContext {
            model: self.model.clone(),
            task: task.clone(),
            batch,
            weight_profile: self.profile.clone(),
            attention_keep: keep,
        }
    }

    /// Simulates a workload on MCBP.
    #[must_use]
    pub fn evaluate(&self, task: &Task, batch: usize, keep: f64) -> RunReport {
        self.sim.run(&self.context(task, batch, keep))
    }

    /// Simulates a workload, also returning the per-unit energy breakdown.
    #[must_use]
    pub fn evaluate_detailed(
        &self,
        task: &Task,
        batch: usize,
        keep: f64,
    ) -> (RunReport, UnitEnergy) {
        self.sim.run_detailed(&self.context(task, batch, keep))
    }

    /// Runs a workload on any accelerator model (baselines, ablations) with
    /// this engine's weights and operating point.
    #[must_use]
    pub fn evaluate_on(
        &self,
        accel: &dyn Accelerator,
        task: &Task,
        batch: usize,
        keep: f64,
    ) -> RunReport {
        accel.run(&self.context(task, batch, keep))
    }

    /// Builds a request-serving simulator over this engine's accelerator
    /// at the given attention-keep operating point: the entry point to the
    /// `mcbp::serve` subsystem.
    ///
    /// ```
    /// use mcbp::serve::{ArrivalProcess, ContinuousBatchScheduler, LoadGenerator, ServeConfig};
    /// use mcbp::{model::LlmConfig, workloads::Task, Engine};
    ///
    /// let engine = Engine::new(LlmConfig::opt1b3(), 7);
    /// let sim = engine.serve_sim(0.3, ServeConfig::default());
    /// let load = LoadGenerator::uniform(
    ///     Task::cola(), 3, ArrivalProcess::ClosedLoop { concurrency: 3 },
    /// ).generate();
    /// let report = sim.run(&load, &mut ContinuousBatchScheduler::new());
    /// assert_eq!(report.completed, 3);
    /// ```
    #[must_use]
    pub fn serve_sim(&self, keep: f64, cfg: mcbp_serve::ServeConfig) -> mcbp_serve::ServeSim<'_> {
        mcbp_serve::ServeSim::new(&self.sim, self.context(&Task::cola(), 1, keep), cfg)
    }

    /// BSTC-compresses a fresh weight sample and returns the encoded form
    /// (offline pre-deployment step of Fig 6).
    #[must_use]
    pub fn compress_sample(&self, rows: usize, cols: usize) -> EncodedWeights {
        let sample = self
            .generator
            .quantized_sample(rows, cols, self.seed ^ 0xc0de);
        let planes = mcbp_bitslice::BitPlanes::from_matrix(&sample);
        EncodedWeights::encode(
            &planes,
            self.sim.config().group_size,
            PlaneSelection::paper_default(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_is_deterministic() {
        let a = Engine::new(LlmConfig::opt1b3(), 3);
        let b = Engine::new(LlmConfig::opt1b3(), 3);
        let ra = a.evaluate(&Task::cola(), 1, 0.3);
        let rb = b.evaluate(&Task::cola(), 1, 0.3);
        assert_eq!(ra.total_cycles().to_bits(), rb.total_cycles().to_bits());
    }

    #[test]
    fn compress_sample_roundtrips_and_compresses() {
        let engine = Engine::new(LlmConfig::llama7b(), 5);
        let enc = engine.compress_sample(32, 256);
        assert!(enc.compression_ratio() > 1.0);
        assert_eq!(enc.decode().to_matrix().rows(), 32);
    }

    #[test]
    fn evaluate_on_baseline_uses_same_context() {
        let engine = Engine::new(LlmConfig::llama7b(), 5);
        let sa = mcbp_baselines::SystolicArray::new();
        let r = engine.evaluate_on(&sa, &Task::dolly(), 1, 0.3);
        assert!(r.decode.kv_load_cycles > 0.0);
    }
}
