//! # MCBP — bit-slice LLM inference acceleration
//!
//! A full reproduction of *"MCBP: A Memory-Compute Efficient LLM Inference
//! Accelerator Leveraging Bit-Slice-enabled Sparsity and Repetitiveness"*
//! (MICRO 2025): the three algorithms (BRCR, BSTC, BGPP), the cycle-level
//! accelerator model, the memory substrate, a functional quantized
//! transformer, and analytic models of every compared design.
//!
//! This crate is the user-facing entry point. It re-exports the subsystem
//! crates under stable module names and offers [`Engine`], a high-level
//! API that wires them together, plus [`BgppPruner`], the adapter that
//! plugs the bit-grained predictor into the functional transformer for
//! end-to-end fidelity experiments.
//!
//! ## Quick start
//!
//! ```
//! use mcbp::prelude::*;
//!
//! // Exact bit-slice GEMV with measured op reduction:
//! let w = IntMatrix::from_flat(8, 4, 8, (0..32).map(|i| (i % 11) - 5).collect())?;
//! let planes = BitPlanes::from_matrix(&w);
//! let engine = BrcrEngine::new(4);
//! let x: Vec<i32> = (0..8).map(|i| i * 3 - 9).collect();
//! let (y, ops) = engine.gemv(&planes, &x);
//! assert_eq!(y, w.matvec(&x)?);
//! println!("adds: {} (dense bit-serial would be {})", ops.total_adds(), 4 * 8 * 7);
//! # Ok::<(), mcbp::bitslice::BitSliceError>(())
//! ```
//!
//! ## Simulating a workload
//!
//! ```
//! use mcbp::Engine;
//! use mcbp::model::LlmConfig;
//! use mcbp::workloads::Task;
//!
//! let engine = Engine::new(LlmConfig::llama7b(), 42);
//! let report = engine.evaluate(&Task::cola(), 1, 0.3);
//! assert!(report.total_cycles() > 0.0);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod engine;
mod pruners;

pub use engine::Engine;
/// Multi-device scaling model (§5.3); lives in `mcbp-workloads` so the
/// serving subsystem can reuse it, re-exported here for API stability.
pub use mcbp_workloads::Fleet;
pub use pruners::{BgppPruner, ValueTopKPruner};

/// Analytic models of the compared designs.
pub use mcbp_baselines as baselines;
/// BGPP: progressive bit-grained top-k prediction.
pub use mcbp_bgpp as bgpp;
/// Bit-packed matrices, sign–magnitude planes, sparsity statistics.
pub use mcbp_bitslice as bitslice;
/// BRCR: repetition-merging bit-slice GEMM (the core contribution).
pub use mcbp_brcr as brcr;
/// BSTC: two-state bit-plane weight codec.
pub use mcbp_bstc as bstc;
/// HBM/SRAM models and energy/area tables.
pub use mcbp_mem as mem;
/// LLM shape configs and the functional reference transformer.
pub use mcbp_model as model;
/// INT quantization schemes and the integer linear layer.
pub use mcbp_quant as quant;
/// Request serving: arrival processes, schedulers, KV-pool admission.
pub use mcbp_serve as serve;
/// The cycle-level MCBP accelerator model.
pub use mcbp_sim as sim;
/// Serving-trace record/replay and SimPoint-style sampled simulation.
pub use mcbp_trace as trace;
/// Tasks, synthetic weights, traces, the `Accelerator` interface.
pub use mcbp_workloads as workloads;

/// Convenient glob-import surface for examples and tests.
pub mod prelude {
    pub use crate::bgpp::{BgppConfig, ProgressivePredictor, ValueTopK};
    pub use crate::bitslice::{BitMatrix, BitPlanes, IntMatrix};
    pub use crate::brcr::BrcrEngine;
    pub use crate::bstc::{EncodedWeights, PlaneSelection};
    pub use crate::model::LlmConfig;
    pub use crate::quant::{Calibration, FloatMatrix, QuantizedLinear};
    pub use crate::serve::{
        ArrivalProcess, ContinuousBatchScheduler, DeviceProfile, DeviceRole, DispatchPolicy,
        EvictionPolicy, FcfsScheduler, LoadGenerator, PreemptConfig, Priority, PriorityScheduler,
        RequestClass, ServeConfig, ServeReport, ServeSim, SharedPrefix, SloSpec,
    };
    pub use crate::sim::{McbpConfig, McbpSim};
    pub use crate::workloads::{Accelerator, SparsityProfile, Task, TraceContext, WeightGenerator};
    pub use crate::{BgppPruner, Engine, Fleet, ValueTopKPruner};
}
