//! Serving-throughput micro-benchmark: one closed-loop serving simulation
//! per coalescing width, sweeping the continuous-batching `max_batch` to
//! show where weight-stream amortization saturates. The measured quantity
//! is harness wall time per simulation; each run also reports the
//! simulated goodput via the returned `ServeReport`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mcbp_model::LlmConfig;
use mcbp_serve::{
    ArrivalProcess, ContinuousBatchScheduler, LoadGenerator, ServeConfig, ServeSim, Workload,
};
use mcbp_sim::{McbpConfig, McbpSim};
use mcbp_workloads::{SparsityProfile, Task, TraceContext, WeightGenerator};

fn template() -> TraceContext {
    let model = LlmConfig::opt1b3();
    let gen = WeightGenerator::for_model(&model);
    let profile = SparsityProfile::measure(&gen.quantized_sample(64, 512, 0x4d43_4250), 4);
    TraceContext {
        model,
        task: Task::mnli(),
        batch: 1,
        weight_profile: profile,
        attention_keep: 0.3,
    }
}

fn workload() -> Workload {
    LoadGenerator::uniform(
        Task::mnli().with_decode(32),
        32,
        ArrivalProcess::ClosedLoop { concurrency: 16 },
    )
    .generate()
}

fn bench_serve(c: &mut Criterion) {
    let mcbp = McbpSim::new(McbpConfig::default());
    let load = workload();
    let ctx = template();
    let mut group = c.benchmark_group("serve_throughput");
    group.sample_size(10);
    for width in [1usize, 2, 4, 8, 16, 32] {
        let cfg = ServeConfig {
            max_batch: width,
            ..ServeConfig::default()
        };
        group.bench_with_input(BenchmarkId::new("coalesce", width), &cfg, |b, cfg| {
            // Fresh simulator per iteration so the step-cost cache is cold:
            // the measurement covers the full cost-model + event-loop path
            // (the trace context is prebuilt — weight sampling is not the
            // quantity under test).
            b.iter(|| {
                let sim = ServeSim::new(&mcbp, ctx.clone(), cfg.clone());
                sim.run(&load, &mut ContinuousBatchScheduler::new())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_serve);
criterion_main!(benches);
