//! Microbenchmark: BSTC encode/decode bandwidth on LLM-like weights.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mcbp_bitslice::BitPlanes;
use mcbp_bstc::{EncodedWeights, PlaneSelection};
use mcbp_model::LlmConfig;
use mcbp_workloads::WeightGenerator;

fn bench_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("bstc_codec");
    group.sample_size(20);
    for cols in [256usize, 1024] {
        let generator = WeightGenerator::for_model(&LlmConfig::qwen7b());
        let w = generator.quantized_sample(64, cols, 11);
        let planes = BitPlanes::from_matrix(&w);
        group.throughput(Throughput::Bytes((64 * cols) as u64));
        group.bench_with_input(BenchmarkId::new("encode", cols), &cols, |b, _| {
            b.iter(|| EncodedWeights::encode(&planes, 4, PlaneSelection::paper_default()));
        });
        let enc = EncodedWeights::encode(&planes, 4, PlaneSelection::paper_default());
        group.bench_with_input(BenchmarkId::new("decode", cols), &cols, |b, _| {
            b.iter(|| enc.decode());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_codec);
criterion_main!(benches);
