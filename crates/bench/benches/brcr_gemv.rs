//! Microbenchmark: BRCR GEMV vs dense integer GEMV on LLM-like weights.
//!
//! Software throughput is not the claim (the hardware has 30k parallel
//! adders); what matters here is that the *operation counts* scale as the
//! cost model predicts while the functional engine stays exact.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mcbp_bitslice::{BitPlanes, IntMatrix};
use mcbp_brcr::BrcrEngine;
use mcbp_model::LlmConfig;
use mcbp_workloads::WeightGenerator;

fn inputs(h: usize) -> (IntMatrix, BitPlanes, Vec<i32>) {
    let generator = WeightGenerator::for_model(&LlmConfig::llama7b());
    let w = generator.quantized_sample(64, h, 7);
    let planes = BitPlanes::from_matrix(&w);
    let x: Vec<i32> = (0..h).map(|i| ((i as i32 * 31) % 255) - 127).collect();
    (w, planes, x)
}

fn bench_brcr_gemv(c: &mut Criterion) {
    let mut group = c.benchmark_group("brcr_gemv");
    group.sample_size(20);
    for h in [512usize, 2048] {
        let (w, planes, x) = inputs(h);
        group.bench_with_input(BenchmarkId::new("dense_reference", h), &h, |b, _| {
            b.iter(|| w.matvec(&x).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("brcr_m4", h), &h, |b, _| {
            let engine = BrcrEngine::new(4);
            b.iter(|| engine.gemv(&planes, &x));
        });
        group.bench_with_input(BenchmarkId::new("brcr_m8", h), &h, |b, _| {
            let engine = BrcrEngine::new(8);
            b.iter(|| engine.gemv(&planes, &x));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_brcr_gemv);
criterion_main!(benches);
