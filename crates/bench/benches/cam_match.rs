//! Microbenchmark: CAM match-stream accounting vs serial matching.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mcbp_brcr::cam::CamModel;

fn bench_cam(c: &mut Criterion) {
    let mut group = c.benchmark_group("cam_match");
    group.sample_size(30);
    for n in [1024usize, 16384] {
        let patterns: Vec<u32> = (0..n).map(|i| ((i * 7 + 3) % 16) as u32).collect();
        group.bench_with_input(BenchmarkId::new("match_stream", n), &n, |b, _| {
            let cam = CamModel::new(4);
            b.iter(|| cam.match_stream(&patterns));
        });
        group.bench_with_input(BenchmarkId::new("speedup_vs_serial", n), &n, |b, _| {
            let cam = CamModel::new(4);
            b.iter(|| cam.speedup_vs_serial(&patterns));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cam);
criterion_main!(benches);
