//! Trace-subsystem micro-benchmark: wall time of a full diurnal serving
//! simulation versus its trace-sampled estimate, plus the encode/decode
//! cost of the binary trace format. Besides the criterion timings, a
//! custom `main` writes `BENCH_serving_trace.json` next to the target
//! directory with the measured speedup and the sampled-sim error bounds
//! so CI can track the subsystem's headline numbers as data.

use std::time::Instant;

use criterion::{criterion_group, Criterion};
use mcbp::prelude::*;
use mcbp::serve::{ArrivalProcess, LoadGenerator, RequestClass, Workload};
use mcbp::trace::{from_bytes, to_bytes, SampledSim, SamplerConfig};

const SEED: u64 = 0x4d43_4250;

fn diurnal(count: usize) -> Workload {
    LoadGenerator {
        task_mix: vec![Task::mnli().with_decode(32)],
        class_mix: vec![RequestClass::interactive(1.0, 0.1), RequestClass::batch()],
        prefix_mix: vec![None],
        count,
        process: ArrivalProcess::Diurnal {
            rate_rps: 0.15,
            amplitude: 0.7,
            period_s: 3600.0,
            seed: SEED,
        },
    }
    .generate()
}

fn sampler() -> SampledSim {
    SampledSim::new(SamplerConfig {
        windows: 96,
        clusters: 4,
        ..SamplerConfig::default()
    })
}

fn bench_trace(c: &mut Criterion) {
    let engine = Engine::new(LlmConfig::opt1b3(), SEED);
    let sim = engine.serve_sim(0.3, ServeConfig::default());
    let load = diurnal(512);
    let (_, trace) = sim.run_traced(&load, &mut PriorityScheduler::new());
    let bytes = to_bytes(&trace).expect("serialize");

    let mut group = c.benchmark_group("serve_trace");
    group.sample_size(10);
    group.bench_function("full_sim", |b| {
        b.iter(|| sim.run(&load, &mut PriorityScheduler::new()))
    });
    group.bench_function("sampled_sim", |b| {
        let s = sampler();
        b.iter(|| {
            s.run(&trace, &mut |w| sim.run(w, &mut PriorityScheduler::new()))
                .expect("sampling succeeds")
        })
    });
    group.bench_function("encode", |b| {
        b.iter(|| to_bytes(&trace).expect("serialize"))
    });
    group.bench_function("decode", |b| {
        b.iter(|| from_bytes(&bytes).expect("deserialize"))
    });
    group.finish();
}

criterion_group!(benches, bench_trace);

/// One headline measurement, dumped as JSON for CI trend tracking.
fn write_summary() {
    let engine = Engine::new(LlmConfig::opt1b3(), SEED);
    let sim = engine.serve_sim(0.3, ServeConfig::default());
    let load = diurnal(1536);

    let t0 = Instant::now();
    let (full, trace) = sim.run_traced(&load, &mut PriorityScheduler::new());
    let full_wall_s = t0.elapsed().as_secs_f64();

    let t1 = Instant::now();
    let sampled = sampler()
        .run(&trace, &mut |w| sim.run(w, &mut PriorityScheduler::new()))
        .expect("sampling succeeds");
    let sampled_wall_s = t1.elapsed().as_secs_f64();

    let encoded_bytes = to_bytes(&trace).expect("serialize").len();
    let json = format!(
        concat!(
            "{{\"experiment\":\"serving_trace\",",
            "\"full_steps\":{},\"sampled_steps\":{},\"step_fraction\":{},",
            "\"full_wall_s\":{},\"sampled_wall_s\":{},",
            "\"goodput_rel_err\":{},\"ttft_p95_rel_err\":{},",
            "\"encoded_bytes\":{},\"phases\":{}}}"
        ),
        full.steps.steps,
        sampled.simulated_steps,
        sampled.step_fraction(),
        full_wall_s,
        sampled_wall_s,
        sampled.goodput_error(&full),
        sampled.ttft_p95_error(&full),
        encoded_bytes,
        sampled.phases.len(),
    );
    std::fs::write("BENCH_serving_trace.json", &json).expect("write summary");
    println!("wrote BENCH_serving_trace.json: {json}");
}

fn main() {
    benches();
    write_summary();
}
