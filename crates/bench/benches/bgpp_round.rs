//! Microbenchmark: one BGPP progressive-prediction pass vs value-level
//! top-k over growing key sets.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mcbp_bgpp::{BgppConfig, ProgressivePredictor, ValueTopK};
use mcbp_bitslice::{BitPlanes, IntMatrix};

fn keys(s: usize, d: usize) -> BitPlanes {
    let data: Vec<i32> = (0..s * d)
        .map(|i| ((i.wrapping_mul(2654435761) >> 7) % 255) as i32 - 127)
        .collect();
    BitPlanes::from_matrix(&IntMatrix::from_flat(8, s, d, data).unwrap())
}

fn bench_bgpp(c: &mut Criterion) {
    let mut group = c.benchmark_group("bgpp_round");
    group.sample_size(20);
    for s in [256usize, 2048] {
        let planes = keys(s, 64);
        let q: Vec<i32> = (0..64).map(|i| (i % 15) - 7).collect();
        group.bench_with_input(BenchmarkId::new("progressive", s), &s, |b, _| {
            let p = ProgressivePredictor::new(BgppConfig::standard());
            b.iter(|| p.predict(&q, &planes, 0.01));
        });
        group.bench_with_input(BenchmarkId::new("value_topk", s), &s, |b, _| {
            let v = ValueTopK::new(4, s / 10);
            b.iter(|| v.predict(&q, &planes));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_bgpp);
criterion_main!(benches);
