//! Macro-benchmark: one full workload evaluation on the cycle model and
//! every baseline — the inner loop of the `repro` figure harness.

use criterion::{criterion_group, criterion_main, Criterion};
use mcbp_baselines::{GpuA100, Spatten, SystolicArray};
use mcbp_bench::context;
use mcbp_model::LlmConfig;
use mcbp_sim::{McbpConfig, McbpSim};
use mcbp_workloads::{Accelerator, Task};

fn bench_e2e(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2e_workload");
    group.sample_size(10);
    let ctx = context(&LlmConfig::llama7b(), &Task::wikilingua(), 8, 0.3);
    group.bench_function("mcbp_sim", |b| {
        let sim = McbpSim::new(McbpConfig::default());
        b.iter(|| sim.run(&ctx));
    });
    group.bench_function("gpu_model", |b| {
        let gpu = GpuA100::dense();
        b.iter(|| gpu.run(&ctx));
    });
    group.bench_function("spatten_model", |b| {
        let s = Spatten::new();
        b.iter(|| s.run(&ctx));
    });
    group.bench_function("systolic_model", |b| {
        let s = SystolicArray::new();
        b.iter(|| s.run(&ctx));
    });
    group.finish();
}

criterion_group!(benches, bench_e2e);
criterion_main!(benches);
