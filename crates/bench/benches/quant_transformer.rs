//! Macro-benchmark: the functional INT8 transformer with and without the
//! BGPP pruner (the Table 2 / Fig 24a inner loop).

use criterion::{criterion_group, criterion_main, Criterion};
use mcbp::BgppPruner;
use mcbp_model::{KeepAll, QuantTransformer, Transformer, TransformerConfig};
use mcbp_quant::Calibration;

fn bench_transformer(c: &mut Criterion) {
    let mut group = c.benchmark_group("quant_transformer");
    group.sample_size(10);
    let cfg = TransformerConfig::tiny();
    let model = Transformer::random(cfg, 3);
    let tokens: Vec<usize> = (0..24).map(|i| (i * 13 + 5) % cfg.vocab).collect();
    let quant = QuantTransformer::quantize(&model, &tokens, 8, Calibration::MinMax);
    group.bench_function("dense_int8", |b| {
        b.iter(|| quant.forward(&tokens, &KeepAll));
    });
    group.bench_function("bgpp_pruned", |b| {
        let pruner = BgppPruner::standard();
        b.iter(|| quant.forward(&tokens, &pruner));
    });
    group.finish();
}

criterion_group!(benches, bench_transformer);
criterion_main!(benches);
