//! Fleet-drive micro-benchmark: wall time of a 16-device open-loop
//! burst simulation on the sequential reference drive versus the
//! parallel scoped-worker drive. Besides the criterion timings, a
//! custom `main` writes `BENCH_serving_fleet.json` next to the target
//! directory with the measured wall times, the speedup, the host's
//! available parallelism, and a bit-exactness flag so CI can track the
//! subsystem's headline numbers as data. (On a single-core runner the
//! speedup is ≤1 by construction — the JSON records what was actually
//! measured; the ≥2× acceptance gate lives in `repro serving_parallel`
//! and only arms on multi-core hosts.)

use std::time::Instant;

use criterion::{criterion_group, Criterion};
use mcbp::prelude::*;
use mcbp::serve::{DispatchPolicy, Request, Workload};

const SEED: u64 = 0x4d43_4250;
const DEVICES: usize = 16;

/// Open-loop burst: every request due at cycle 0, so the fleet drains
/// in one parallel phase (the shape that isolates per-device stepping).
fn burst(count: u64) -> Workload {
    let task = Task::mnli().with_decode(32);
    Workload {
        requests: (0..count)
            .map(|i| Request::from_task(i, &task, 0.0))
            .collect(),
        closed_loop: None,
    }
}

fn mk() -> impl FnMut() -> Box<dyn mcbp::serve::Scheduler> {
    || Box::new(ContinuousBatchScheduler::new()) as Box<dyn mcbp::serve::Scheduler>
}

fn workers() -> usize {
    std::thread::available_parallelism()
        .map_or(1, usize::from)
        .clamp(2, DEVICES)
}

fn bench_fleet(c: &mut Criterion) {
    let engine = Engine::new(LlmConfig::opt1b3(), SEED);
    let seq_sim = engine.serve_sim(0.3, ServeConfig::default());
    let par_sim = engine.serve_sim(
        0.3,
        ServeConfig {
            fleet_workers: Some(workers()),
            ..ServeConfig::default()
        },
    );
    let load = burst(192);
    let fleet = vec![DeviceProfile::uniform(); DEVICES];
    let policy = DispatchPolicy::JoinShortestQueue;

    let mut group = c.benchmark_group("serve_fleet");
    group.sample_size(10);
    group.bench_function("sequential_drive", |b| {
        b.iter(|| seq_sim.run_fleet_profiles(&load, &fleet, policy, &mut mk()))
    });
    group.bench_function("parallel_drive", |b| {
        b.iter(|| par_sim.run_fleet_profiles(&load, &fleet, policy, &mut mk()))
    });
    group.finish();
}

criterion_group!(benches, bench_fleet);

/// One headline measurement, dumped as JSON for CI trend tracking.
fn write_summary() {
    let engine = Engine::new(LlmConfig::opt1b3(), SEED);
    let n_workers = workers();
    let seq_sim = engine.serve_sim(0.3, ServeConfig::default());
    let par_sim = engine.serve_sim(
        0.3,
        ServeConfig {
            fleet_workers: Some(n_workers),
            ..ServeConfig::default()
        },
    );
    let load = burst(384);
    let fleet = vec![DeviceProfile::uniform(); DEVICES];
    let policy = DispatchPolicy::JoinShortestQueue;

    // Warm the cost caches so the timed runs compare stepping cost.
    let warm = burst(DEVICES as u64);
    let _ = seq_sim.run_fleet_profiles(&warm, &fleet, policy, &mut mk());
    let _ = par_sim.run_fleet_profiles(&warm, &fleet, policy, &mut mk());

    let t0 = Instant::now();
    let seq = seq_sim.run_fleet_profiles(&load, &fleet, policy, &mut mk());
    let seq_wall_s = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    let par = par_sim.run_fleet_profiles(&load, &fleet, policy, &mut mk());
    let par_wall_s = t1.elapsed().as_secs_f64();
    assert_eq!(seq, par, "parallel fleet drive diverged from sequential");

    let cores: usize = std::thread::available_parallelism().map_or(1, usize::from);
    let json = format!(
        concat!(
            "{{\"experiment\":\"serving_fleet\",",
            "\"devices\":{},\"requests\":{},\"workers\":{},\"host_cores\":{},",
            "\"seq_wall_s\":{},\"par_wall_s\":{},\"speedup\":{},",
            "\"steps\":{},\"bit_exact\":true}}"
        ),
        DEVICES,
        load.requests.len(),
        n_workers,
        cores,
        seq_wall_s,
        par_wall_s,
        seq_wall_s / par_wall_s.max(1e-12),
        seq.steps.steps,
    );
    std::fs::write("BENCH_serving_fleet.json", &json).expect("write summary");
    println!("wrote BENCH_serving_fleet.json: {json}");
}

fn main() {
    benches();
    write_summary();
}
