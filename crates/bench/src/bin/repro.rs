//! Regenerates the paper's evaluation tables and figures.
//!
//! ```text
//! repro <experiment-id> [...]   # e.g. repro fig17 fig19
//! repro all                     # everything, in paper order
//! repro list                    # available ids
//! ```

use std::env;
use std::process::ExitCode;

use mcbp_bench::experiments;

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    if args.is_empty() || args[0] == "help" || args[0] == "--help" {
        eprintln!("usage: repro <experiment-id ...>|all|list");
        eprintln!("ids: {}", experiments::all_ids().join(" "));
        return ExitCode::FAILURE;
    }
    if args[0] == "list" {
        for id in experiments::all_ids() {
            println!("{id}");
        }
        return ExitCode::SUCCESS;
    }
    let ids: Vec<&str> = if args[0] == "all" {
        experiments::all_ids()
    } else {
        args.iter().map(String::as_str).collect()
    };
    for id in ids {
        match experiments::run(id) {
            Ok(output) => {
                println!("=== {id} ===");
                println!("{output}");
            }
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
