//! Benchmark harness for the MCBP reproduction: shared workload plumbing,
//! plain-text table rendering, and one experiment function per paper table
//! and figure (see `experiments`). The `repro` binary dispatches to these;
//! integration tests call them directly.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod experiments;

use mcbp_model::LlmConfig;
use mcbp_workloads::{SparsityProfile, Task, TraceContext, WeightGenerator};

/// Default attention-keep operating point used across comparative
/// experiments (the paper's standard configuration retains roughly 30 % of
/// KV pairs at matched accuracy; Fig 24a).
pub const STANDARD_KEEP: f64 = 0.3;

/// Deterministic seed base for every experiment ("MCBP" in ASCII).
pub const SEED: u64 = 0x4d43_4250;

/// Builds the standard trace context for (model, task): measured weight
/// profile from the model-calibrated generator, given batch and keep.
#[must_use]
pub fn context(model: &LlmConfig, task: &Task, batch: usize, keep: f64) -> TraceContext {
    let gen = WeightGenerator::for_model(model);
    let sample = gen.quantized_sample(64, 1024, SEED);
    TraceContext {
        model: model.clone(),
        task: task.clone(),
        batch,
        weight_profile: SparsityProfile::measure(&sample, 4),
        attention_keep: keep,
    }
}

/// Renders an aligned plain-text table.
#[must_use]
pub fn render_table(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let line = |cells: Vec<String>| -> String {
        cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect::<Vec<_>>()
            .join("  ")
    };
    out.push_str(&line(headers.iter().map(|h| (*h).to_owned()).collect()));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&line(row.clone()));
        out.push('\n');
    }
    out
}

/// Formats a float with 2 decimals.
#[must_use]
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a percentage with 1 decimal.
#[must_use]
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let t = render_table("T", &["a", "bbb"], &[vec!["1".into(), "2".into()]]);
        assert!(t.contains("a  bbb"));
        assert!(t.contains("1    2"));
    }
}
