//! One function per paper table/figure. Every function is pure relative to
//! its fixed seed and returns the rendered experiment output.

mod architecture;
mod comparison;
mod disagg;
mod motivation;
mod parallel;
mod serving;
mod trace;

pub use architecture::{fig19, fig20, fig21, fig22, tab3};
pub use comparison::{fig17, fig23, fig24a, fig24b, fig25, fig26, tab1, tab4};
pub use disagg::serving_disagg;
pub use motivation::{fig18, fig1a, fig4, fig5ab, fig5cd, fig5fg, fig8b, fig8c, tab2};
pub use parallel::serving_parallel;
pub use serving::{
    serving, serving_capacity, serving_fleet, serving_hetero, serving_mixed, serving_models,
    serving_slo,
};
pub use trace::serving_trace;

/// All experiment ids in paper order.
#[must_use]
pub fn all_ids() -> Vec<&'static str> {
    vec![
        "fig1a",
        "fig4",
        "fig5ab",
        "fig5cd",
        "fig5fg",
        "fig8b",
        "fig8c",
        "tab1",
        "tab2",
        "fig17",
        "fig18",
        "fig19",
        "fig20",
        "fig21",
        "tab3",
        "fig22",
        "fig23",
        "tab4",
        "fig24a",
        "fig24b",
        "fig25",
        "fig26",
        "serving",
        "serving_capacity",
        "serving_slo",
        "serving_fleet",
        "serving_mixed",
        "serving_hetero",
        "serving_models",
        "serving_trace",
        "serving_parallel",
        "serving_disagg",
    ]
}

/// Runs one experiment by id.
///
/// # Errors
///
/// Returns an error message for unknown ids.
pub fn run(id: &str) -> Result<String, String> {
    match id {
        "fig1a" => Ok(fig1a()),
        "fig4" => Ok(fig4()),
        "fig5ab" => Ok(fig5ab()),
        "fig5cd" => Ok(fig5cd()),
        "fig5fg" => Ok(fig5fg()),
        "fig8b" => Ok(fig8b()),
        "fig8c" => Ok(fig8c()),
        "tab1" => Ok(tab1()),
        "tab2" => Ok(tab2()),
        "fig17" => Ok(fig17()),
        "fig18" => Ok(fig18()),
        "fig19" => Ok(fig19()),
        "fig20" => Ok(fig20()),
        "fig21" => Ok(fig21()),
        "tab3" => Ok(tab3()),
        "fig22" => Ok(fig22()),
        "fig23" => Ok(fig23()),
        "tab4" => Ok(tab4()),
        "fig24a" => Ok(fig24a()),
        "fig24b" => Ok(fig24b()),
        "fig25" => Ok(fig25()),
        "fig26" => Ok(fig26()),
        "serving" => Ok(serving()),
        "serving_capacity" => Ok(serving_capacity()),
        "serving_slo" => Ok(serving_slo()),
        "serving_fleet" => Ok(serving_fleet()),
        "serving_mixed" => Ok(serving_mixed()),
        "serving_hetero" => Ok(serving_hetero()),
        "serving_models" => Ok(serving_models()),
        "serving_trace" => Ok(serving_trace()),
        "serving_parallel" => Ok(serving_parallel()),
        "serving_disagg" => Ok(serving_disagg()),
        other => Err(format!("unknown experiment id: {other}")),
    }
}
