//! Parallel fleet-drive experiment: drive a 16-device fleet through an
//! open-loop burst (every arrival due at cycle 0, so the run is one
//! dispatch fixpoint followed by one fleet-wide drain phase), once on
//! the sequential reference drive and once on the scoped worker pool,
//! and prove the parallel path is **pure execution strategy**: the
//! `ServeReport` and the recorded `RunTrace` are asserted bit-equal.
//!
//! On a multi-core host the experiment additionally asserts the ≥2×
//! wall-clock speedup the parallel drive exists for. On a single-core
//! host (as reported by `std::thread::available_parallelism`) no
//! speedup is physically observable — the workers time-slice one core —
//! so the speedup assertion is skipped with an explicit note while the
//! bit-exactness assertions still run.

use std::time::Instant;

use mcbp::prelude::*;
use mcbp::serve::{DispatchPolicy, Request, Workload};

use crate::{render_table, SEED, STANDARD_KEEP};

const DEVICES: usize = 16;
const REQUESTS: u64 = 384;

/// Open-loop burst: every request due at cycle 0. The whole workload
/// dispatches in the initial fixpoint and the fleet drains in one
/// parallel phase — the shape that isolates per-device stepping cost.
fn burst() -> Workload {
    let task = Task::mnli().with_decode(32);
    let requests = (0..REQUESTS)
        .map(|i| Request::from_task(i, &task, 0.0))
        .collect();
    Workload {
        requests,
        closed_loop: None,
    }
}

fn mk() -> impl FnMut() -> Box<dyn mcbp::serve::Scheduler> {
    || Box::new(ContinuousBatchScheduler::new()) as Box<dyn mcbp::serve::Scheduler>
}

/// Sequential-vs-parallel fleet drive: bit-exact reports and traces,
/// with the speedup asserted on multi-core hosts.
#[must_use]
pub fn serving_parallel() -> String {
    let engine = Engine::new(LlmConfig::opt1b3(), SEED);
    let load = burst();
    let fleet = vec![DeviceProfile::uniform(); DEVICES];
    let policy = DispatchPolicy::JoinShortestQueue;
    let cores: usize = std::thread::available_parallelism().map_or(1, usize::from);
    let workers = cores.min(DEVICES);

    let seq_sim = engine.serve_sim(STANDARD_KEEP, ServeConfig::default());
    let par_sim = engine.serve_sim(
        STANDARD_KEEP,
        ServeConfig {
            fleet_workers: Some(workers.max(2)),
            ..ServeConfig::default()
        },
    );

    // Warm both cost caches on a small prefix of the load so the timed
    // runs compare stepping, not first-touch cost modelling.
    let warm = Workload {
        requests: load.requests[..DEVICES.min(load.requests.len())].to_vec(),
        closed_loop: None,
    };
    let _ = seq_sim.run_fleet_profiles(&warm, &fleet, policy, &mut mk());
    let _ = par_sim.run_fleet_profiles(&warm, &fleet, policy, &mut mk());

    let t0 = Instant::now();
    let seq = seq_sim.run_fleet_profiles(&load, &fleet, policy, &mut mk());
    let seq_s = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    let par = par_sim.run_fleet_profiles(&load, &fleet, policy, &mut mk());
    let par_s = t1.elapsed().as_secs_f64();

    assert_eq!(seq, par, "parallel fleet drive diverged from sequential");
    assert_eq!(seq.completed, REQUESTS as usize);

    // The traced runs must agree event for event as well.
    let (seq_traced, seq_trace) =
        seq_sim.run_fleet_profiles_traced(&load, &fleet, policy, &mut mk());
    let (par_traced, par_trace) =
        par_sim.run_fleet_profiles_traced(&load, &fleet, policy, &mut mk());
    assert_eq!(seq_traced, seq, "tracing must be a pure observer");
    assert_eq!(seq_traced, par_traced);
    assert_eq!(seq_trace, par_trace, "parallel trace diverged");

    let speedup = seq_s / par_s.max(1e-12);
    let multi_core = cores >= 2;
    if multi_core {
        assert!(
            speedup >= 2.0,
            "parallel fleet drive must be ≥2x on a {DEVICES}-device fleet \
             ({cores} cores, {workers} workers): {speedup:.2}x"
        );
    }

    let rows = vec![
        vec![
            "sequential".into(),
            "1".into(),
            format!("{:.1}", seq_s * 1e3),
            "1.00".into(),
        ],
        vec![
            "parallel".into(),
            format!("{}", workers.max(2)),
            format!("{:.1}", par_s * 1e3),
            format!("{speedup:.2}"),
        ],
    ];
    let mut out = render_table(
        &format!(
            "Parallel fleet drive: {DEVICES} devices, {REQUESTS}-request burst, {policy:?} \
             (report + trace bit-exact)"
        ),
        &["drive", "workers", "wall ms", "speedup"],
        &rows,
    );
    if multi_core {
        out.push_str(&format!(
            "\nspeedup {speedup:.2}x on {cores} cores (>=2x asserted)\n"
        ));
    } else {
        out.push_str(
            "\nsingle-core host: speedup unobservable (workers time-slice one core); \
             >=2x assertion skipped, bit-exactness asserted\n",
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The experiment's asserts are the acceptance criteria; running it
    /// end-to-end is the test.
    #[test]
    fn serving_parallel_is_bit_exact() {
        let out = serving_parallel();
        assert!(out.contains("bit-exact"));
    }
}
