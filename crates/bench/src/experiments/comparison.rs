//! Cross-accelerator comparison experiments: Fig 17, Fig 23, Table 1,
//! Table 4, Fig 24, Fig 25, Fig 26.

use mcbp::prelude::*;
use mcbp_baselines::{specs, Bitwave, CambriconC, Fact, FuseKna, Sofa, Spatten, SystolicArray};
use mcbp_model::{fidelity, KeepAll, QuantTransformer, Transformer, TransformerConfig};
use mcbp_sim::ThroughputReport;
use mcbp_workloads::RunReport;

use crate::{context, f2, pct, render_table, SEED, STANDARD_KEEP};

fn designs() -> Vec<Box<dyn Accelerator>> {
    vec![
        Box::new(Sofa::new()),
        Box::new(Spatten::new()),
        Box::new(Fact::new()),
        Box::new(Bitwave::new()),
        Box::new(FuseKna::new()),
        Box::new(McbpSim::new(McbpConfig::default())),
    ]
}

/// Fig 17: normalized prefill computation and decode memory access across
/// accelerators and models (computation normalized to SOFA, memory to
/// FuseKNA, as in the paper).
#[must_use]
pub fn fig17() -> String {
    let task = Task::wikilingua();
    let mut comp_rows = Vec::new();
    let mut mem_rows = Vec::new();
    for model in LlmConfig::paper_suite() {
        let ctx = context(&model, &task, 1, STANDARD_KEEP);
        let reports: Vec<(String, RunReport)> = designs()
            .iter()
            .map(|d| (d.name().to_owned(), d.run(&ctx)))
            .collect();
        let comp_base = reports[0].1.prefill.gemm_cycles.max(1.0); // SOFA
        let mem = |r: &RunReport| r.decode.weight_load_cycles + r.decode.kv_load_cycles;
        let mem_base = mem(&reports[4].1).max(1.0); // FuseKNA
        let mut comp_cells = vec![model.name.to_owned()];
        let mut mem_cells = vec![model.name.to_owned()];
        for (_, r) in &reports {
            comp_cells.push(f2(r.prefill.gemm_cycles / comp_base));
            mem_cells.push(f2(mem(r) / mem_base));
        }
        comp_rows.push(comp_cells);
        mem_rows.push(mem_cells);
    }
    let names: Vec<&str> = vec![
        "model", "SOFA", "SpAtten", "FACT", "Bitwave", "FuseKNA", "MCBP",
    ];
    let mut out = render_table(
        "Fig 17 (left) - normalized prefill computation (SOFA = 1.00)",
        &names,
        &comp_rows,
    );
    out.push('\n');
    out.push_str(&render_table(
        "Fig 17 (right) - normalized decode memory access (FuseKNA = 1.00)",
        &names,
        &mem_rows,
    ));
    out.push_str("shape check: MCBP has the lowest column in both halves for every model\n");
    out
}

/// Fig 23: prefill/decode speedup and energy composition vs the five
/// accelerators on Dolly, Wikilingua and MBPP (Llama7B).
#[must_use]
pub fn fig23() -> String {
    let model = LlmConfig::llama7b();
    let mut out = String::new();
    for (phase_name, pick) in [("prefill", true), ("decoding", false)] {
        let mut rows = Vec::new();
        for task in [Task::dolly(), Task::wikilingua(), Task::mbpp()] {
            let ctx = context(&model, &task, 1, STANDARD_KEEP);
            let base = SystolicArray::new().run(&ctx);
            let base_cycles = if pick {
                base.prefill.total_cycles()
            } else {
                base.decode.total_cycles()
            };
            let mut cells = vec![task.name.to_owned()];
            for d in designs() {
                let r = d.run(&ctx);
                let c = if pick {
                    r.prefill.total_cycles()
                } else {
                    r.decode.total_cycles()
                };
                cells.push(f2(base_cycles / c.max(1.0)));
            }
            rows.push(cells);
        }
        out.push_str(&render_table(
            &format!("Fig 23 - {phase_name} speedup over dense systolic array (Llama7B)"),
            &[
                "task", "SOFA", "SpAtten", "FACT", "Bitwave", "FuseKNA", "MCBP",
            ],
            &rows,
        ));
        out.push('\n');
    }

    // Energy composition (bit-reorder share), prefill.
    let ctx = context(&model, &Task::wikilingua(), 1, STANDARD_KEEP);
    let mut rows = Vec::new();
    for d in designs() {
        let r = d.run(&ctx);
        let total = r.total_pj();
        let compute = r.prefill.compute_pj + r.decode.compute_pj;
        let reorder = r.prefill.reorder_pj + r.decode.reorder_pj;
        let offchip = r.prefill.offchip_pj + r.decode.offchip_pj;
        rows.push(vec![
            d.name().to_owned(),
            pct(compute / total),
            pct(reorder / total),
            pct(offchip / total),
        ]);
    }
    out.push_str(&render_table(
        "Fig 23 - energy composition (share of total)",
        &["design", "computing", "bit reorder", "off-chip mem"],
        &rows,
    ));
    out.push_str(
        "shape check: FuseKNA > Bitwave > MCBP in reorder share (paper: 30% / 18% / 3%)\n",
    );
    out
}

/// Table 1: the qualitative feature survey.
#[must_use]
pub fn tab1() -> String {
    let mark = |b: bool| if b { "yes" } else { "-" }.to_owned();
    let rows: Vec<Vec<String>> = specs::table1()
        .into_iter()
        .map(|r| {
            vec![
                r.name.to_owned(),
                r.venue.to_owned(),
                mark(r.gemm_qkv_ffn),
                mark(r.gemm_attention),
                mark(r.weight_access),
                mark(r.kv_access),
                if r.prefill_and_decode {
                    "P&D"
                } else {
                    "P only"
                }
                .to_owned(),
                format!("{:?}", r.level),
            ]
        })
        .collect();
    render_table(
        "Table 1 - accelerator feature survey",
        &[
            "design",
            "venue",
            "QKV&FFN",
            "attention",
            "weight",
            "KV cache",
            "stage",
            "level",
        ],
        &rows,
    )
}

/// Table 4: published specs, normalized to 28 nm, plus this simulator's
/// measured efficiency ordering.
#[must_use]
pub fn tab4() -> String {
    let mut rows = Vec::new();
    let table = specs::table4();
    let mcbp_eff = table.last().expect("MCBP row").efficiency_at_28nm();
    for r in &table {
        rows.push(vec![
            r.name.to_owned(),
            format!("{} nm", r.technology_nm),
            f2(r.area_mm2),
            f2(r.area_at_28nm()),
            format!("{:.0}", r.throughput_gops),
            format!("{:.0}", r.efficiency_at_28nm()),
            f2(mcbp_eff / r.efficiency_at_28nm()),
        ]);
    }
    let mut out = render_table(
        "Table 4 - published specs normalized to 28 nm",
        &[
            "design",
            "node",
            "area",
            "area@28nm",
            "GOPS",
            "GOPS/W@28nm",
            "MCBP advantage",
        ],
        &rows,
    );

    // Cross-check with the simulator's own measured efficiency.
    let model = LlmConfig::llama7b();
    let sim = McbpSim::new(McbpConfig::default());
    let ctx = context(&model, &Task::wikilingua(), 8, STANDARD_KEEP);
    let t = ThroughputReport::measure(&sim, &ctx);
    out.push_str(&format!(
        "simulated MCBP on Llama7B/Wikilingua: {:.0} GOPS, {:.0} GOPS/W\n",
        t.gops(),
        t.gops_per_watt()
    ));
    out
}

/// Fig 24(a): the α_r sweep — fidelity vs attention sparsity on the
/// functional transformer.
#[must_use]
pub fn fig24a() -> String {
    let cfg = TransformerConfig::tiny();
    let model = Transformer::random(cfg, SEED);
    let tokens: Vec<usize> = (0..40).map(|i| (i * 13 + 7) % cfg.vocab).collect();
    let fp = model.forward_f32(&tokens);
    let quant = QuantTransformer::quantize(&model, &tokens, 8, Calibration::MinMax);
    let (int8, _) = quant.forward(&tokens, &KeepAll);
    let int8_agreement = fidelity::top1_agreement(&fp, &int8);

    let mut rows = Vec::new();
    for alpha in [0.8f32, 0.7, 0.6, 0.5, 0.4, 0.3] {
        let pruner = mcbp::BgppPruner::with_alpha(alpha);
        let (logits, stats) = quant.forward(&tokens, &pruner);
        rows.push(vec![
            format!("{alpha:.1}"),
            pct(fidelity::top1_agreement(&fp, &logits)),
            format!("{:.4}", fidelity::mean_kl_divergence(&fp, &logits)),
            pct(stats.sparsity()),
        ]);
    }
    let mut out = render_table(
        "Fig 24(a) - alpha sweep: fidelity vs attention sparsity (INT8 reference)",
        &[
            "alpha",
            "top-1 agreement",
            "KL vs FP32",
            "attention sparsity",
        ],
        &rows,
    );
    out.push_str(&format!(
        "INT8 (no pruning) agreement: {}; smaller alpha => more sparsity, lower fidelity;\n\
         the paper operates at alpha in [0.5, 0.6]\n",
        pct(int8_agreement)
    ));
    out
}

/// Fig 24(b): hardware ablation against an area-matched systolic array.
#[must_use]
pub fn fig24b() -> String {
    let model = LlmConfig::llama7b();
    let ctx = context(&model, &Task::wikilingua(), 8, STANDARD_KEEP);
    let sa = SystolicArray::new().run(&ctx);
    let sa_cycles = sa.total_cycles();
    let sa_pj = sa.total_pj();

    // Area/power deltas follow the paper's reported overheads per unit
    // (CAM +25% of the BRCR unit, BSTC +16%, BGPP +9% area).
    let variants: [(&str, McbpConfig, f64, f64); 3] = [
        (
            "BRCR",
            McbpConfig {
                enable_brcr: true,
                ..McbpConfig::ablation_baseline()
            },
            0.55,
            0.28,
        ),
        (
            "+BSTC",
            McbpConfig {
                enable_brcr: true,
                enable_bstc: true,
                ..McbpConfig::ablation_baseline()
            },
            0.64,
            0.34,
        ),
        ("+BGPP", McbpConfig::default(), 0.70, 0.38),
    ];
    let mut rows = vec![vec![
        "SystolicArray".to_owned(),
        "1.00".into(),
        "1.00".into(),
        "1.00".into(),
        "1.00".into(),
    ]];
    for (name, cfg, area, power) in variants {
        let r = McbpSim::new(cfg).run(&ctx);
        let thr = sa_cycles / r.total_cycles();
        let eff = (sa_pj / r.total_pj()).max(0.0);
        rows.push(vec![name.to_owned(), f2(area), f2(power), f2(thr), f2(eff)]);
    }
    render_table(
        "Fig 24(b) - ablation vs area-matched systolic array (normalized)",
        &["config", "area", "power", "throughput", "energy efficiency"],
        &rows,
    )
}

/// Fig 25: bit vs value sparsity and BRCR/BSTC gains across quantization
/// strategies (PTQ INT8, QAT-like INT8, PTQ INT4).
#[must_use]
pub fn fig25() -> String {
    let model = LlmConfig::llama13b();
    let gen = WeightGenerator::for_model(&model);
    let schemes: [(&str, u8, Calibration); 3] = [
        ("PTQ INT8", 8, Calibration::MinMax),
        ("QAT INT8", 8, Calibration::Percentile(0.9995)),
        ("PTQ INT4", 4, Calibration::Percentile(0.995)),
    ];
    let mut rows = Vec::new();
    for (name, bits, cal) in schemes {
        let w = gen.quantized_sample_bits(96, 1024, SEED, bits, cal);
        let p = SparsityProfile::measure(&w, 4);
        let elems = 96.0 * 1024.0;
        let comp_red = 1.0 - p.brcr_latency_passes(96, 1024) / (elems * f64::from(bits - 1));
        let mem_red = 1.0 - p.bstc_bits_per_element(0.65) / f64::from(bits);
        rows.push(vec![
            name.to_owned(),
            pct(p.value_sparsity),
            pct(p.mean_bit_sparsity),
            f2(p.bit_to_value_ratio()),
            pct(comp_red),
            pct(mem_red),
        ]);
    }
    let mut out = render_table(
        "Fig 25 - sparsity and BRCR/BSTC gains across quantization strategies (Llama13B)",
        &[
            "scheme",
            "value SR",
            "bit SR",
            "bit/value",
            "BRCR comp. red.",
            "BSTC mem. red.",
        ],
        &rows,
    );
    out.push_str(
        "shape check: INT4 raises value sparsity several-fold yet bit sparsity still dominates\n",
    );
    out
}

/// Fig 26: MCBP vs Cambricon-C (W4A8) on Dolly across three models.
#[must_use]
pub fn fig26() -> String {
    let mut rows = Vec::new();
    for model in [
        LlmConfig::bloom1b7(),
        LlmConfig::llama7b(),
        LlmConfig::llama13b(),
    ] {
        let gen = WeightGenerator::for_model(&model);
        // W4A8: INT4 weights for both designs (§6 extends Cam-C to W4A8 and
        // runs MCBP on the same QLLM-quantized models).
        let w4 = gen.quantized_sample_bits(96, 1024, SEED, 4, Calibration::Percentile(0.995));
        let profile = SparsityProfile::measure(&w4, 4);
        let ctx = TraceContext {
            model: model.clone(),
            task: Task::dolly(),
            batch: 1,
            weight_profile: profile,
            attention_keep: STANDARD_KEEP,
        };
        let camc = CambriconC::new().run(&ctx);
        let mcbp = McbpSim::new(McbpConfig::default()).run(&ctx);
        rows.push(vec![
            model.name.to_owned(),
            f2(camc.prefill.total_cycles() / mcbp.prefill.total_cycles()),
            f2(camc.decode.total_cycles() / mcbp.decode.total_cycles()),
            f2(camc.total_pj() / mcbp.total_pj()),
        ]);
    }
    let mut out = render_table(
        "Fig 26 - MCBP advantage over Cambricon-C at W4A8 (Dolly)",
        &["model", "prefill speedup", "decode speedup", "energy ratio"],
        &rows,
    );
    out.push_str("paper: 1.5-1.8x prefill, ~2.4x decode, 33-50% energy saving\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig17_mcbp_wins_both_halves() {
        let t = fig17();
        assert!(t.contains("MCBP"));
    }

    #[test]
    fn tab1_marks_only_mcbp_full() {
        let t = tab1();
        assert!(t.contains("P&D"));
        assert!(t.contains("Bit"));
    }

    #[test]
    fn fig24a_monotone_sparsity() {
        let t = fig24a();
        assert!(t.contains("alpha"));
    }
}
