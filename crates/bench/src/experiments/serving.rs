//! Serving-regime experiments: arrival rate × attention-keep × scheduler
//! sweeps over the `mcbp::serve` subsystem, showing that continuous
//! batching plus BGPP's KV pruning raises the sustainable request rate of
//! one MCBP device — and, under overload, that priority preemption
//! protects interactive SLOs and that the drop-vs-swap eviction tradeoff
//! crosses over with context length.

use mcbp::prelude::*;
use mcbp::serve::{
    ArrivalProcess, ContinuousBatchScheduler, EvictionPolicy, FcfsScheduler, LoadGenerator,
    PreemptConfig, Priority, PriorityScheduler, Request, RequestClass, Scheduler, ServeConfig,
    ServeReport, Workload,
};

use crate::{f2, render_table, SEED};

/// The serving sweep task: an MNLI-shaped prompt with a 32-token
/// generation — long enough that decode dominates and coalescing matters,
/// short enough that the sweep stays fast.
fn serve_task() -> Task {
    Task::mnli().with_decode(32)
}

/// KV-pool byte budget used in the sweep: deliberately tight (a fraction
/// of the HBM headroom) so admission control is exercised and the
/// attention-keep ratio visibly changes admissible concurrency.
fn tight_budget(model: &LlmConfig, keep_capacity_requests: usize) -> u64 {
    model.kv_cache_bytes(serve_task().final_context(), 1) * keep_capacity_requests as u64
}

fn run_point(
    engine: &Engine,
    keep: f64,
    budget: u64,
    rate_rps: f64,
    scheduler: &mut dyn Scheduler,
) -> ServeReport {
    let cfg = ServeConfig {
        kv_budget_bytes: Some(budget),
        ..ServeConfig::default()
    };
    let sim = engine.serve_sim(keep, cfg);
    let load = LoadGenerator::uniform(
        serve_task(),
        48,
        ArrivalProcess::Poisson {
            rate_rps,
            seed: SEED,
        },
    );
    sim.run(&load.generate(), scheduler)
}

/// The serving sweep: arrival rate × attention-keep × scheduler on
/// OPT-1.3B under a tight KV budget. Goodput is decoded tokens per second
/// of completed requests; stall is total admission queueing.
#[must_use]
pub fn serving() -> String {
    let model = LlmConfig::opt1b3();
    let engine = Engine::new(model.clone(), SEED);
    let budget = tight_budget(&model, 8); // eight dense requests' worth
    let mut rows = Vec::new();
    for &rate in &[2.0, 8.0, 32.0] {
        for &keep in &[1.0, 0.3] {
            let fcfs = run_point(&engine, keep, budget, rate, &mut FcfsScheduler::new());
            let cb = run_point(
                &engine,
                keep,
                budget,
                rate,
                &mut ContinuousBatchScheduler::new(),
            );
            for r in [&fcfs, &cb] {
                rows.push(vec![
                    format!("{rate:.0}"),
                    format!("{keep:.1}"),
                    r.scheduler.clone(),
                    f2(r.goodput_tokens_per_s),
                    f2(r.throughput_rps),
                    format!("{:.1}", r.ttft.p95 * 1e3),
                    f2(r.mean_decode_batch),
                    format!("{}", r.peak_concurrency),
                    format!("{:.2}", r.pool.admission_stall_seconds),
                ]);
            }
        }
    }
    render_table(
        "serving: arrival rate x attention-keep x scheduler (OPT-1.3B, tight KV pool)",
        &[
            "req/s",
            "keep",
            "scheduler",
            "tok/s",
            "done/s",
            "p95 ttft ms",
            "batch",
            "conc",
            "stall s",
        ],
        &rows,
    )
}

/// Sustainable-QPS summary: the highest swept arrival rate each
/// configuration serves without its completion rate collapsing below 90 %
/// of offered load — the headline "continuous batching + BGPP pruning
/// raises sustainable QPS" claim.
#[must_use]
pub fn serving_capacity() -> String {
    let model = LlmConfig::opt1b3();
    let engine = Engine::new(model.clone(), SEED);
    let budget = tight_budget(&model, 8);
    let rates = [1.0, 2.0, 4.0, 8.0, 16.0, 32.0];
    let mut rows = Vec::new();
    for (name, keep, continuous) in [
        ("fcfs dense", 1.0, false),
        ("fcfs + BGPP keep=0.3", 0.3, false),
        ("continuous dense", 1.0, true),
        ("continuous + BGPP keep=0.3", 0.3, true),
    ] {
        let mut sustained = 0.0f64;
        let mut best_goodput = 0.0f64;
        for &rate in &rates {
            let mut sched: Box<dyn Scheduler> = if continuous {
                Box::new(ContinuousBatchScheduler::new())
            } else {
                Box::new(FcfsScheduler::new())
            };
            let r = run_point(&engine, keep, budget, rate, sched.as_mut());
            let offered = r.offered_rps.unwrap_or(rate);
            if r.throughput_rps < 0.9 * offered.min(rate) {
                // "Sustained" means every rate up to this one held; stop at
                // the first failure rather than crediting a higher rate
                // that merely happened to pass on this finite trace.
                break;
            }
            sustained = rate;
            best_goodput = r.goodput_tokens_per_s;
        }
        rows.push(vec![
            name.to_owned(),
            format!("{sustained:.0}"),
            f2(best_goodput),
        ]);
    }
    render_table(
        "serving capacity: sustainable QPS per configuration (OPT-1.3B)",
        &["configuration", "sustained req/s", "goodput tok/s"],
        &rows,
    )
}

// ---------------------------------------------------------------------
// serving_slo: preemption, priority classes, and SLO-aware goodput
// ---------------------------------------------------------------------

/// Interactive-class latency objectives of the SLO experiment: generous
/// enough that an unloaded run meets them easily, tight enough that
/// head-of-line blocking under overload misses them.
const SLO_TTFT_S: f64 = 0.5;
const SLO_TPOT_S: f64 = 0.05;

/// The overloaded bursty trace: one interactive request (with TTFT/TPOT
/// deadlines) per three batch-class requests, arriving in bursts well
/// above what one device sustains on the tight pool.
fn slo_trace() -> Workload {
    LoadGenerator::uniform(
        serve_task(),
        32,
        ArrivalProcess::Bursty {
            rate_rps: 24.0,
            burst_factor: 8.0,
            burst_len: 8,
            seed: SEED,
        },
    )
    .with_classes(vec![
        RequestClass::interactive(SLO_TTFT_S, SLO_TPOT_S),
        RequestClass::batch(),
        RequestClass::batch(),
        RequestClass::batch(),
    ])
    .generate()
}

/// One point of the SLO comparison: the same trace and pool under one
/// scheduler and one eviction policy.
fn run_slo_point(
    engine: &Engine,
    budget: u64,
    scheduler: &mut dyn Scheduler,
    policy: EvictionPolicy,
) -> ServeReport {
    let cfg = ServeConfig {
        kv_budget_bytes: Some(budget),
        preempt: PreemptConfig {
            policy,
            ..PreemptConfig::default()
        },
        ..ServeConfig::default()
    };
    engine.serve_sim(0.3, cfg).run(&slo_trace(), scheduler)
}

/// A two-request contention scenario at one context scale: a batch-class
/// request owns the pool when an interactive request arrives that cannot
/// fit beside it — the admission must evict, and the eviction policy's
/// overhead (replay vs transfer) is the measured quantity.
fn contention_trace(victim_task: &Task) -> Workload {
    let victim = Request::from_task(0, victim_task, 0.0);
    let interactive = Request::from_task(1, &Task::cola().with_decode(8), 1.0e6)
        .with_priority(Priority::Interactive)
        .with_slo(mcbp::serve::SloSpec::interactive(SLO_TTFT_S, SLO_TPOT_S));
    Workload {
        requests: vec![victim, interactive],
        closed_loop: None,
    }
}

/// Runs one crossover point: the contention scenario under one eviction
/// policy, on a pool sized to hold the victim xor the interactive request.
fn run_crossover_point(engine: &Engine, victim_task: &Task, policy: EvictionPolicy) -> ServeReport {
    let model = LlmConfig::opt1b3();
    let keep = 0.3;
    let budget = mcbp::serve::request_kv_bytes(&model, victim_task.final_context(), keep) + 4096;
    let cfg = ServeConfig {
        kv_budget_bytes: Some(budget),
        preempt: PreemptConfig {
            policy,
            ..PreemptConfig::default()
        },
        ..ServeConfig::default()
    };
    engine.serve_sim(keep, cfg).run(
        &contention_trace(victim_task),
        &mut PriorityScheduler::new(),
    )
}

/// The SLO/preemption experiment: (a) the same overloaded bursty trace
/// under FCFS, plain continuous batching (both without preemption), and
/// priority-aware continuous batching with drop-and-recompute or swap
/// eviction — priority preemption is the only configuration that keeps
/// the interactive class's SLO-goodput high; and (b) the drop-vs-swap
/// eviction-overhead crossover: drop-and-recompute wins at short contexts
/// (little KV to rebuild), swap wins at long contexts (moving O(c) bytes
/// beats recomputing O(c²) attention). Every point replays byte-identically
/// under the fixed seed; the rendered output asserts it.
#[must_use]
#[allow(clippy::missing_panics_doc)]
pub fn serving_slo() -> String {
    let model = LlmConfig::opt1b3();
    let engine = Engine::new(model.clone(), SEED);
    // A pool two dense requests wide: bursts oversubscribe it immediately.
    let budget = tight_budget(&model, 2);

    let fresh: fn(&str) -> Box<dyn Scheduler> = |kind| match kind {
        "fcfs" => Box::new(FcfsScheduler::new()),
        "cb" => Box::new(ContinuousBatchScheduler::new()),
        _ => Box::new(PriorityScheduler::new()),
    };
    let mut out = String::new();
    let mut rows = Vec::new();
    for (name, kind, policy) in [
        ("fcfs / no preempt", "fcfs", EvictionPolicy::None),
        ("continuous / no preempt", "cb", EvictionPolicy::None),
        (
            "priority / drop-recompute",
            "priority",
            EvictionPolicy::DropRecompute,
        ),
        ("priority / swap", "priority", EvictionPolicy::Swap),
    ] {
        let r = run_slo_point(&engine, budget, fresh(kind).as_mut(), policy);
        assert_eq!(
            r,
            run_slo_point(&engine, budget, fresh(kind).as_mut(), policy),
            "{name} must replay byte-identically"
        );
        rows.push(vec![
            name.to_owned(),
            f2(r.slo_goodput_for(Priority::Interactive)),
            f2(r.slo_goodput_for(Priority::Batch)),
            f2(r.goodput_tokens_per_s),
            format!("{}/{}", r.slo_met, r.completed),
            format!("{}", r.preempt.preemptions),
            format!("{:.3}", r.preempt.overhead_seconds()),
        ]);
    }
    out.push_str(&render_table(
        "serving SLO: overloaded bursty trace, 1:3 interactive:batch (OPT-1.3B, keep 0.3, replay-checked)",
        &[
            "scheduler / policy",
            "inter slo tok/s",
            "batch slo tok/s",
            "tok/s",
            "slo met",
            "evict",
            "evict s",
        ],
        &rows,
    ));

    let mut rows = Vec::new();
    for (label, task) in [
        ("short (MNLI, ctx 0.5k)", serve_task()),
        ("long (Dolly, ctx 8k)", Task::dolly().with_decode(16)),
    ] {
        for policy in [EvictionPolicy::DropRecompute, EvictionPolicy::Swap] {
            let r = run_crossover_point(&engine, &task, policy);
            assert_eq!(
                r,
                run_crossover_point(&engine, &task, policy),
                "crossover points must replay byte-identically"
            );
            rows.push(vec![
                label.to_owned(),
                match policy {
                    EvictionPolicy::DropRecompute => "drop-recompute".to_owned(),
                    _ => "swap".to_owned(),
                },
                format!("{}", r.preempt.preemptions),
                format!("{:.4}", r.preempt.recompute_seconds),
                format!("{:.4}", r.preempt.swap_seconds),
                format!("{:.4}", r.preempt.overhead_seconds()),
                format!("{:.4}", r.e2e.max),
            ]);
        }
    }
    out.push('\n');
    out.push_str(&render_table(
        "eviction crossover: drop-recompute wins short contexts, swap wins long (OPT-1.3B, keep 0.3)",
        &[
            "victim context",
            "policy",
            "evict",
            "replay s",
            "xfer s",
            "overhead s",
            "max e2e s",
        ],
        &rows,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_preemption_wins_interactive_slo_goodput_under_overload() {
        let model = LlmConfig::opt1b3();
        let engine = Engine::new(model.clone(), SEED);
        let budget = tight_budget(&model, 2);
        let fcfs = run_slo_point(
            &engine,
            budget,
            &mut FcfsScheduler::new(),
            EvictionPolicy::None,
        );
        let cb = run_slo_point(
            &engine,
            budget,
            &mut ContinuousBatchScheduler::new(),
            EvictionPolicy::None,
        );
        let preempt = run_slo_point(
            &engine,
            budget,
            &mut PriorityScheduler::new(),
            EvictionPolicy::DropRecompute,
        );
        assert!(preempt.preempt.preemptions > 0, "overload must evict");
        let inter = |r: &ServeReport| r.slo_goodput_for(Priority::Interactive);
        assert!(
            inter(&preempt) > inter(&cb) && inter(&preempt) > inter(&fcfs),
            "priority preemption {} vs cb {} vs fcfs {}",
            inter(&preempt),
            inter(&cb),
            inter(&fcfs)
        );
    }

    #[test]
    fn eviction_overhead_crosses_over_with_context() {
        let engine = Engine::new(LlmConfig::opt1b3(), SEED);
        let short = serve_task();
        let long = Task::dolly().with_decode(16);
        let overhead = |task: &Task, policy| {
            let r = run_crossover_point(&engine, task, policy);
            assert!(r.preempt.preemptions > 0, "contention must evict");
            assert_eq!(r.completed, 2, "both requests must still complete");
            r.preempt.overhead_seconds()
        };
        assert!(
            overhead(&short, EvictionPolicy::DropRecompute)
                < overhead(&short, EvictionPolicy::Swap),
            "drop-and-recompute must win at short contexts"
        );
        assert!(
            overhead(&long, EvictionPolicy::Swap) < overhead(&long, EvictionPolicy::DropRecompute),
            "swap must win at long contexts"
        );
    }

    #[test]
    fn serving_sweep_prefers_continuous_batching() {
        let model = LlmConfig::opt1b3();
        let engine = Engine::new(model.clone(), SEED);
        let budget = tight_budget(&model, 8);
        let fcfs = run_point(&engine, 0.3, budget, 8.0, &mut FcfsScheduler::new());
        let cb = run_point(
            &engine,
            0.3,
            budget,
            8.0,
            &mut ContinuousBatchScheduler::new(),
        );
        assert!(
            cb.goodput_tokens_per_s > fcfs.goodput_tokens_per_s,
            "cb {} vs fcfs {}",
            cb.goodput_tokens_per_s,
            fcfs.goodput_tokens_per_s
        );
    }
}
