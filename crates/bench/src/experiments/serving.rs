//! Serving-regime experiments: arrival rate × attention-keep × scheduler
//! sweeps over the `mcbp::serve` subsystem, showing that continuous
//! batching plus BGPP's KV pruning raises the sustainable request rate of
//! one MCBP device.

use mcbp::prelude::*;
use mcbp::serve::{
    ArrivalProcess, ContinuousBatchScheduler, FcfsScheduler, LoadGenerator, Scheduler, ServeConfig,
    ServeReport,
};

use crate::{f2, render_table, SEED};

/// The serving sweep task: an MNLI-shaped prompt with a 32-token
/// generation — long enough that decode dominates and coalescing matters,
/// short enough that the sweep stays fast.
fn serve_task() -> Task {
    Task::mnli().with_decode(32)
}

/// KV-pool byte budget used in the sweep: deliberately tight (a fraction
/// of the HBM headroom) so admission control is exercised and the
/// attention-keep ratio visibly changes admissible concurrency.
fn tight_budget(model: &LlmConfig, keep_capacity_requests: usize) -> u64 {
    model.kv_cache_bytes(serve_task().final_context(), 1) * keep_capacity_requests as u64
}

fn run_point(
    engine: &Engine,
    keep: f64,
    budget: u64,
    rate_rps: f64,
    scheduler: &mut dyn Scheduler,
) -> ServeReport {
    let cfg = ServeConfig {
        kv_budget_bytes: Some(budget),
        ..ServeConfig::default()
    };
    let sim = engine.serve_sim(keep, cfg);
    let load = LoadGenerator::uniform(
        serve_task(),
        48,
        ArrivalProcess::Poisson {
            rate_rps,
            seed: SEED,
        },
    );
    sim.run(&load.generate(), scheduler)
}

/// The serving sweep: arrival rate × attention-keep × scheduler on
/// OPT-1.3B under a tight KV budget. Goodput is decoded tokens per second
/// of completed requests; stall is total admission queueing.
#[must_use]
pub fn serving() -> String {
    let model = LlmConfig::opt1b3();
    let engine = Engine::new(model.clone(), SEED);
    let budget = tight_budget(&model, 8); // eight dense requests' worth
    let mut rows = Vec::new();
    for &rate in &[2.0, 8.0, 32.0] {
        for &keep in &[1.0, 0.3] {
            let fcfs = run_point(&engine, keep, budget, rate, &mut FcfsScheduler::new());
            let cb = run_point(
                &engine,
                keep,
                budget,
                rate,
                &mut ContinuousBatchScheduler::new(),
            );
            for r in [&fcfs, &cb] {
                rows.push(vec![
                    format!("{rate:.0}"),
                    format!("{keep:.1}"),
                    r.scheduler.clone(),
                    f2(r.goodput_tokens_per_s),
                    f2(r.throughput_rps),
                    format!("{:.1}", r.ttft.p95 * 1e3),
                    f2(r.mean_decode_batch),
                    format!("{}", r.peak_concurrency),
                    format!("{:.2}", r.pool.admission_stall_seconds),
                ]);
            }
        }
    }
    render_table(
        "serving: arrival rate x attention-keep x scheduler (OPT-1.3B, tight KV pool)",
        &[
            "req/s",
            "keep",
            "scheduler",
            "tok/s",
            "done/s",
            "p95 ttft ms",
            "batch",
            "conc",
            "stall s",
        ],
        &rows,
    )
}

/// Sustainable-QPS summary: the highest swept arrival rate each
/// configuration serves without its completion rate collapsing below 90 %
/// of offered load — the headline "continuous batching + BGPP pruning
/// raises sustainable QPS" claim.
#[must_use]
pub fn serving_capacity() -> String {
    let model = LlmConfig::opt1b3();
    let engine = Engine::new(model.clone(), SEED);
    let budget = tight_budget(&model, 8);
    let rates = [1.0, 2.0, 4.0, 8.0, 16.0, 32.0];
    let mut rows = Vec::new();
    for (name, keep, continuous) in [
        ("fcfs dense", 1.0, false),
        ("fcfs + BGPP keep=0.3", 0.3, false),
        ("continuous dense", 1.0, true),
        ("continuous + BGPP keep=0.3", 0.3, true),
    ] {
        let mut sustained = 0.0f64;
        let mut best_goodput = 0.0f64;
        for &rate in &rates {
            let mut sched: Box<dyn Scheduler> = if continuous {
                Box::new(ContinuousBatchScheduler::new())
            } else {
                Box::new(FcfsScheduler::new())
            };
            let r = run_point(&engine, keep, budget, rate, sched.as_mut());
            let offered = r.offered_rps.unwrap_or(rate);
            if r.throughput_rps < 0.9 * offered.min(rate) {
                // "Sustained" means every rate up to this one held; stop at
                // the first failure rather than crediting a higher rate
                // that merely happened to pass on this finite trace.
                break;
            }
            sustained = rate;
            best_goodput = r.goodput_tokens_per_s;
        }
        rows.push(vec![
            name.to_owned(),
            format!("{sustained:.0}"),
            f2(best_goodput),
        ]);
    }
    render_table(
        "serving capacity: sustainable QPS per configuration (OPT-1.3B)",
        &["configuration", "sustained req/s", "goodput tok/s"],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serving_sweep_prefers_continuous_batching() {
        let model = LlmConfig::opt1b3();
        let engine = Engine::new(model.clone(), SEED);
        let budget = tight_budget(&model, 8);
        let fcfs = run_point(&engine, 0.3, budget, 8.0, &mut FcfsScheduler::new());
        let cb = run_point(
            &engine,
            0.3,
            budget,
            8.0,
            &mut ContinuousBatchScheduler::new(),
        );
        assert!(
            cb.goodput_tokens_per_s > fcfs.goodput_tokens_per_s,
            "cb {} vs fcfs {}",
            cb.goodput_tokens_per_s,
            fcfs.goodput_tokens_per_s
        );
    }
}
