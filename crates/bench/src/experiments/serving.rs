//! Serving-regime experiments: arrival rate × attention-keep × scheduler
//! sweeps over the `mcbp::serve` subsystem, showing that continuous
//! batching plus BGPP's KV pruning raises the sustainable request rate of
//! one MCBP device — and, under overload, that priority preemption
//! protects interactive SLOs and that the drop-vs-swap eviction tradeoff
//! crosses over with context length.

use mcbp::prelude::*;
use mcbp::serve::{
    ArrivalProcess, ContinuousBatchScheduler, DispatchPolicy, EvictionPolicy, FcfsScheduler,
    LatencyStats, LoadGenerator, PreemptConfig, Priority, PriorityScheduler, Request, RequestClass,
    Scheduler, ServeConfig, ServeReport, ServeSim, Workload,
};
use mcbp::workloads::Derated;

use crate::{context, f2, render_table, SEED, STANDARD_KEEP};

/// The serving sweep task: an MNLI-shaped prompt with a 32-token
/// generation — long enough that decode dominates and coalescing matters,
/// short enough that the sweep stays fast.
fn serve_task() -> Task {
    Task::mnli().with_decode(32)
}

/// KV-pool byte budget used in the sweep: deliberately tight (a fraction
/// of the HBM headroom) so admission control is exercised and the
/// attention-keep ratio visibly changes admissible concurrency.
fn tight_budget(model: &LlmConfig, keep_capacity_requests: usize) -> u64 {
    model.kv_cache_bytes(serve_task().final_context(), 1) * keep_capacity_requests as u64
}

fn run_point(
    engine: &Engine,
    keep: f64,
    budget: u64,
    rate_rps: f64,
    scheduler: &mut dyn Scheduler,
) -> ServeReport {
    let cfg = ServeConfig {
        kv_budget_bytes: Some(budget),
        ..ServeConfig::default()
    };
    let sim = engine.serve_sim(keep, cfg);
    let load = LoadGenerator::uniform(
        serve_task(),
        48,
        ArrivalProcess::Poisson {
            rate_rps,
            seed: SEED,
        },
    );
    sim.run(&load.generate(), scheduler)
}

/// The serving sweep: arrival rate × attention-keep × scheduler on
/// OPT-1.3B under a tight KV budget. Goodput is decoded tokens per second
/// of completed requests; stall is total admission queueing.
#[must_use]
pub fn serving() -> String {
    let model = LlmConfig::opt1b3();
    let engine = Engine::new(model.clone(), SEED);
    let budget = tight_budget(&model, 8); // eight dense requests' worth
    let mut rows = Vec::new();
    for &rate in &[2.0, 8.0, 32.0] {
        for &keep in &[1.0, 0.3] {
            let fcfs = run_point(&engine, keep, budget, rate, &mut FcfsScheduler::new());
            let cb = run_point(
                &engine,
                keep,
                budget,
                rate,
                &mut ContinuousBatchScheduler::new(),
            );
            for r in [&fcfs, &cb] {
                rows.push(vec![
                    format!("{rate:.0}"),
                    format!("{keep:.1}"),
                    r.scheduler.clone(),
                    f2(r.goodput_tokens_per_s),
                    f2(r.throughput_rps),
                    format!("{:.1}", r.ttft.p95 * 1e3),
                    f2(r.mean_decode_batch),
                    format!("{}", r.peak_concurrency),
                    format!("{:.2}", r.pool.admission_stall_seconds),
                ]);
            }
        }
    }
    render_table(
        "serving: arrival rate x attention-keep x scheduler (OPT-1.3B, tight KV pool)",
        &[
            "req/s",
            "keep",
            "scheduler",
            "tok/s",
            "done/s",
            "p95 ttft ms",
            "batch",
            "conc",
            "stall s",
        ],
        &rows,
    )
}

/// Sustainable-QPS summary: the highest swept arrival rate each
/// configuration serves without its completion rate collapsing below 90 %
/// of offered load — the headline "continuous batching + BGPP pruning
/// raises sustainable QPS" claim.
#[must_use]
pub fn serving_capacity() -> String {
    let model = LlmConfig::opt1b3();
    let engine = Engine::new(model.clone(), SEED);
    let budget = tight_budget(&model, 8);
    let rates = [1.0, 2.0, 4.0, 8.0, 16.0, 32.0];
    let mut rows = Vec::new();
    for (name, keep, continuous) in [
        ("fcfs dense", 1.0, false),
        ("fcfs + BGPP keep=0.3", 0.3, false),
        ("continuous dense", 1.0, true),
        ("continuous + BGPP keep=0.3", 0.3, true),
    ] {
        let mut sustained = 0.0f64;
        let mut best_goodput = 0.0f64;
        for &rate in &rates {
            let mut sched: Box<dyn Scheduler> = if continuous {
                Box::new(ContinuousBatchScheduler::new())
            } else {
                Box::new(FcfsScheduler::new())
            };
            let r = run_point(&engine, keep, budget, rate, sched.as_mut());
            let offered = r.offered_rps.unwrap_or(rate);
            if r.throughput_rps < 0.9 * offered.min(rate) {
                // "Sustained" means every rate up to this one held; stop at
                // the first failure rather than crediting a higher rate
                // that merely happened to pass on this finite trace.
                break;
            }
            sustained = rate;
            best_goodput = r.goodput_tokens_per_s;
        }
        rows.push(vec![
            name.to_owned(),
            format!("{sustained:.0}"),
            f2(best_goodput),
        ]);
    }
    render_table(
        "serving capacity: sustainable QPS per configuration (OPT-1.3B)",
        &["configuration", "sustained req/s", "goodput tok/s"],
        &rows,
    )
}

// ---------------------------------------------------------------------
// serving_slo: preemption, priority classes, and SLO-aware goodput
// ---------------------------------------------------------------------

/// Interactive-class latency objectives of the SLO experiment: generous
/// enough that an unloaded run meets them easily, tight enough that
/// head-of-line blocking under overload misses them.
const SLO_TTFT_S: f64 = 0.5;
const SLO_TPOT_S: f64 = 0.05;

/// The overloaded bursty trace: one interactive request (with TTFT/TPOT
/// deadlines) per three batch-class requests, arriving in bursts well
/// above what one device sustains on the tight pool.
fn slo_trace() -> Workload {
    LoadGenerator::uniform(
        serve_task(),
        32,
        ArrivalProcess::Bursty {
            rate_rps: 24.0,
            burst_factor: 8.0,
            burst_len: 8,
            seed: SEED,
        },
    )
    .with_classes(vec![
        RequestClass::interactive(SLO_TTFT_S, SLO_TPOT_S),
        RequestClass::batch(),
        RequestClass::batch(),
        RequestClass::batch(),
    ])
    .generate()
}

/// One point of the SLO comparison: the same trace and pool under one
/// scheduler and one eviction policy.
fn run_slo_point(
    engine: &Engine,
    budget: u64,
    scheduler: &mut dyn Scheduler,
    policy: EvictionPolicy,
) -> ServeReport {
    let cfg = ServeConfig {
        kv_budget_bytes: Some(budget),
        preempt: PreemptConfig {
            policy,
            ..PreemptConfig::default()
        },
        ..ServeConfig::default()
    };
    engine.serve_sim(0.3, cfg).run(&slo_trace(), scheduler)
}

/// A two-request contention scenario at one context scale: a batch-class
/// request owns the pool when an interactive request arrives that cannot
/// fit beside it — the admission must evict, and the eviction policy's
/// overhead (replay vs transfer) is the measured quantity.
fn contention_trace(victim_task: &Task) -> Workload {
    let victim = Request::from_task(0, victim_task, 0.0);
    let interactive = Request::from_task(1, &Task::cola().with_decode(8), 1.0e6)
        .with_priority(Priority::Interactive)
        .with_slo(mcbp::serve::SloSpec::interactive(SLO_TTFT_S, SLO_TPOT_S));
    Workload {
        requests: vec![victim, interactive],
        closed_loop: None,
    }
}

/// Runs one crossover point: the contention scenario under one eviction
/// policy, on a pool sized to hold the victim xor the interactive request.
/// Prefill chunking is disabled here: the crossover isolates the cost of
/// evicting a victim whose KV is fully materialized (chunking would let
/// the interactive request preempt mid-prefill, where drop-and-recompute
/// replays only completed chunks and trivially wins — that regime is
/// covered by the chunked-prefill tests instead).
fn run_crossover_point(engine: &Engine, victim_task: &Task, policy: EvictionPolicy) -> ServeReport {
    let model = LlmConfig::opt1b3();
    let keep = 0.3;
    let budget = mcbp::serve::request_kv_bytes(&model, victim_task.final_context(), keep) + 4096;
    let cfg = ServeConfig {
        kv_budget_bytes: Some(budget),
        prefill_chunk: None,
        preempt: PreemptConfig {
            policy,
            ..PreemptConfig::default()
        },
        ..ServeConfig::default()
    };
    engine.serve_sim(keep, cfg).run(
        &contention_trace(victim_task),
        &mut PriorityScheduler::new(),
    )
}

/// The SLO/preemption experiment: (a) the same overloaded bursty trace
/// under FCFS, plain continuous batching (both without preemption), and
/// priority-aware continuous batching with drop-and-recompute or swap
/// eviction — priority preemption is the only configuration that keeps
/// the interactive class's SLO-goodput high; and (b) the drop-vs-swap
/// eviction-overhead crossover: drop-and-recompute wins at short contexts
/// (little KV to rebuild), swap wins at long contexts (moving O(c) bytes
/// beats recomputing O(c²) attention). Every point replays byte-identically
/// under the fixed seed; the rendered output asserts it.
#[must_use]
#[allow(clippy::missing_panics_doc)]
pub fn serving_slo() -> String {
    let model = LlmConfig::opt1b3();
    let engine = Engine::new(model.clone(), SEED);
    // A pool two dense requests wide: bursts oversubscribe it immediately.
    let budget = tight_budget(&model, 2);

    let fresh: fn(&str) -> Box<dyn Scheduler> = |kind| match kind {
        "fcfs" => Box::new(FcfsScheduler::new()),
        "cb" => Box::new(ContinuousBatchScheduler::new()),
        _ => Box::new(PriorityScheduler::new()),
    };
    let mut out = String::new();
    let mut rows = Vec::new();
    for (name, kind, policy) in [
        ("fcfs / no preempt", "fcfs", EvictionPolicy::None),
        ("continuous / no preempt", "cb", EvictionPolicy::None),
        (
            "priority / drop-recompute",
            "priority",
            EvictionPolicy::DropRecompute,
        ),
        ("priority / swap", "priority", EvictionPolicy::Swap),
    ] {
        let r = run_slo_point(&engine, budget, fresh(kind).as_mut(), policy);
        assert_eq!(
            r,
            run_slo_point(&engine, budget, fresh(kind).as_mut(), policy),
            "{name} must replay byte-identically"
        );
        rows.push(vec![
            name.to_owned(),
            f2(r.slo_goodput_for(Priority::Interactive)),
            f2(r.slo_goodput_for(Priority::Batch)),
            f2(r.goodput_tokens_per_s),
            format!("{}/{}", r.slo_met, r.completed),
            format!("{}", r.preempt.preemptions),
            format!("{:.3}", r.preempt.overhead_seconds()),
        ]);
    }
    out.push_str(&render_table(
        "serving SLO: overloaded bursty trace, 1:3 interactive:batch (OPT-1.3B, keep 0.3, replay-checked)",
        &[
            "scheduler / policy",
            "inter slo tok/s",
            "batch slo tok/s",
            "tok/s",
            "slo met",
            "evict",
            "evict s",
        ],
        &rows,
    ));

    let mut rows = Vec::new();
    for (label, task) in [
        ("short (MNLI, ctx 0.5k)", serve_task()),
        ("long (Dolly, ctx 8k)", Task::dolly().with_decode(16)),
    ] {
        for policy in [EvictionPolicy::DropRecompute, EvictionPolicy::Swap] {
            let r = run_crossover_point(&engine, &task, policy);
            assert_eq!(
                r,
                run_crossover_point(&engine, &task, policy),
                "crossover points must replay byte-identically"
            );
            rows.push(vec![
                label.to_owned(),
                match policy {
                    EvictionPolicy::DropRecompute => "drop-recompute".to_owned(),
                    _ => "swap".to_owned(),
                },
                format!("{}", r.preempt.preemptions),
                format!("{:.4}", r.preempt.recompute_seconds),
                format!("{:.4}", r.preempt.swap_seconds),
                format!("{:.4}", r.preempt.overhead_seconds()),
                format!("{:.4}", r.e2e.max),
            ]);
        }
    }
    out.push('\n');
    out.push_str(&render_table(
        "eviction crossover: drop-recompute wins short contexts, swap wins long (OPT-1.3B, keep 0.3)",
        &[
            "victim context",
            "policy",
            "evict",
            "replay s",
            "xfer s",
            "overhead s",
            "max e2e s",
        ],
        &rows,
    ));
    out
}

// ---------------------------------------------------------------------
// serving_fleet: per-device dispatch policies and chunked prefill
// ---------------------------------------------------------------------

/// The fleet sweep trace: a bursty mix of MNLI- and Cola-shaped requests
/// (2:1 length skew), so load-aware dispatch has an imbalance to exploit
/// that round-robin cannot see.
fn fleet_trace() -> Workload {
    LoadGenerator {
        task_mix: vec![serve_task(), Task::cola().with_decode(32)],
        class_mix: vec![RequestClass::batch()],
        prefix_mix: vec![None],
        count: 48,
        process: ArrivalProcess::Bursty {
            rate_rps: 24.0,
            burst_factor: 8.0,
            burst_len: 8,
            seed: SEED,
        },
    }
    .generate()
}

/// One fleet point: the bursty trace across `devices` devices, each with
/// a tight KV pool, under one dispatch policy.
fn run_fleet_point(engine: &Engine, devices: usize, policy: DispatchPolicy) -> ServeReport {
    let model = LlmConfig::opt1b3();
    let cfg = ServeConfig {
        // Four dense requests' worth per device: admission control works.
        kv_budget_bytes: Some(tight_budget(&model, 4)),
        ..ServeConfig::default()
    };
    engine
        .serve_sim(0.3, cfg)
        .run_fleet(&fleet_trace(), devices, policy, &mut || {
            Box::new(ContinuousBatchScheduler::new())
        })
}

/// p95 TTFT of the interactive class, in seconds.
pub(crate) fn interactive_p95_ttft(r: &ServeReport) -> f64 {
    let cycles: Vec<f64> = r
        .records
        .iter()
        .filter(|rec| {
            rec.request.priority == Priority::Interactive
                && matches!(rec.state, mcbp::serve::RequestState::Completed)
        })
        .map(mcbp::serve::RequestRecord::ttft_cycles)
        .collect();
    LatencyStats::from_cycles(&cycles).p95
}

/// One chunked-prefill point: interactive Cola requests share a Poisson
/// trace with batch-class 8k Dolly prompts on one device; the only knob
/// is the prefill chunk.
fn run_chunk_point(engine: &Engine, chunk: Option<usize>) -> ServeReport {
    let cfg = ServeConfig {
        prefill_chunk: chunk,
        ..ServeConfig::default()
    };
    let load = LoadGenerator {
        task_mix: vec![Task::dolly().with_decode(16), Task::cola().with_decode(16)],
        class_mix: vec![RequestClass::batch(), RequestClass::interactive(1.0, 0.1)],
        prefix_mix: vec![None],
        count: 12,
        process: ArrivalProcess::Poisson {
            rate_rps: 6.0,
            seed: SEED,
        },
    }
    .generate();
    engine
        .serve_sim(0.3, cfg)
        .run(&load, &mut PriorityScheduler::new())
}

/// The fleet-dispatch experiment: (a) device count × dispatch policy on a
/// bursty mixed-length trace, with per-device goodput and utilization —
/// join-shortest-queue and least-loaded-pool spread the length skew that
/// round-robin pins onto unlucky devices; and (b) the chunked-prefill
/// ablation: on a trace where short interactive prompts queue behind 8k
/// batch prompts, 512-token chunking cuts the interactive p95 TTFT versus
/// monolithic prefill on the same seed and trace (asserted, not just
/// printed). The representative fleet point is replay-checked.
#[must_use]
#[allow(clippy::missing_panics_doc)]
pub fn serving_fleet() -> String {
    let engine = Engine::new(LlmConfig::opt1b3(), SEED);
    let mut out = String::new();

    let mut rows = Vec::new();
    let per_device = |values: Vec<String>| values.join("|");
    for devices in [1usize, 2, 4] {
        let policies: &[DispatchPolicy] = if devices == 1 {
            &[DispatchPolicy::RoundRobin] // all policies coincide on one device
        } else {
            &DispatchPolicy::ALL
        };
        for &policy in policies {
            let r = run_fleet_point(&engine, devices, policy);
            rows.push(vec![
                format!("{devices}"),
                if devices == 1 { "-" } else { policy.name() }.to_owned(),
                f2(r.goodput_tokens_per_s),
                f2(r.throughput_rps),
                format!("{:.1}", r.ttft.p95 * 1e3),
                per_device(
                    r.devices
                        .iter()
                        .map(|d| format!("{:.0}", d.goodput_tokens_per_s))
                        .collect(),
                ),
                per_device(
                    r.devices
                        .iter()
                        .map(|d| format!("{:.0}%", d.utilization * 100.0))
                        .collect(),
                ),
            ]);
        }
    }
    let check = run_fleet_point(&engine, 4, DispatchPolicy::JoinShortestQueue);
    assert_eq!(
        check,
        run_fleet_point(&engine, 4, DispatchPolicy::JoinShortestQueue),
        "fleet dispatch must replay byte-identically"
    );
    out.push_str(&render_table(
        "serving fleet: device count x dispatch policy (OPT-1.3B, keep 0.3, bursty 2:1 length mix, per-device tight pools)",
        &[
            "devices",
            "policy",
            "tok/s",
            "done/s",
            "p95 ttft ms",
            "per-dev tok/s",
            "per-dev util",
        ],
        &rows,
    ));

    let chunked = run_chunk_point(&engine, Some(512));
    let mono = run_chunk_point(&engine, None);
    assert!(
        interactive_p95_ttft(&chunked) < interactive_p95_ttft(&mono),
        "chunked prefill must cut interactive p95 TTFT: {} vs {}",
        interactive_p95_ttft(&chunked),
        interactive_p95_ttft(&mono)
    );
    let mut rows = Vec::new();
    for (label, r) in [("chunked 512", &chunked), ("unchunked", &mono)] {
        rows.push(vec![
            label.to_owned(),
            format!("{:.1}", interactive_p95_ttft(r) * 1e3),
            format!("{:.1}", r.ttft.p95 * 1e3),
            f2(r.goodput_tokens_per_s),
            format!("{:.3}", r.duration_seconds),
        ]);
    }
    out.push('\n');
    out.push_str(&render_table(
        "chunked prefill: interactive p95 TTFT behind 8k prompts, same seed/trace (OPT-1.3B, priority scheduler)",
        &[
            "prefill",
            "inter p95 ttft ms",
            "p95 ttft ms",
            "tok/s",
            "duration s",
        ],
        &rows,
    ));
    out
}

// ---------------------------------------------------------------------
// serving_mixed: budgeted mixed prefill+decode steps (Sarathi-style)
// ---------------------------------------------------------------------

/// The mixed-step trace: 8k batch-class Dolly prompts keep chunk steps in
/// flight, batch-class MNLI streams decode through them (the TPOT
/// victims of phase alternation), and interactive Cola requests guard the
/// TTFT axis. Tasks and classes pair by index (1:3 interactive:batch).
fn mixed_trace() -> Workload {
    LoadGenerator {
        task_mix: vec![
            Task::dolly().with_decode(16),
            Task::mnli().with_decode(64),
            Task::cola().with_decode(16),
        ],
        class_mix: vec![
            RequestClass::batch(),
            RequestClass::batch(),
            RequestClass::interactive(1.0, 0.1),
        ],
        prefix_mix: vec![None],
        count: 18,
        process: ArrivalProcess::Poisson {
            rate_rps: 6.0,
            seed: SEED,
        },
    }
    .generate()
}

/// One mixed-step point: the mixed trace on one device under the priority
/// scheduler, with the step token budget as the only knob (`None` = the
/// PR 3 phase-alternating baseline).
fn run_mixed_point(engine: &Engine, budget: Option<usize>) -> ServeReport {
    let cfg = ServeConfig {
        step_token_budget: budget,
        ..ServeConfig::default()
    };
    engine
        .serve_sim(0.3, cfg)
        .run(&mixed_trace(), &mut PriorityScheduler::new())
}

/// p95 TPOT of one priority class's completed requests, in seconds.
pub(crate) fn class_p95_tpot(r: &ServeReport, priority: Priority) -> f64 {
    let cycles: Vec<f64> = r
        .records
        .iter()
        .filter(|rec| rec.request.priority == priority && rec.completed())
        .map(mcbp::serve::RequestRecord::tpot_cycles)
        .collect();
    LatencyStats::from_cycles(&cycles).p95
}

/// The mixed-step experiment: the same seeded trace swept over the step
/// token budget, with budget `None` as the phase-alternating ablation
/// baseline. With a budget, every chunk step carries piggybacked decode
/// tokens (they ride the chunk's weight stream at incremental cost), so
/// batch-class decode streams stop stalling behind 8k prefills: the
/// headline assertion is that batch-class p95 TPOT improves at
/// equal-or-better interactive p95 TTFT on the same trace. The table also
/// reports the mixed-step fraction and mean budget utilization per
/// budget. Replay-checked at the headline budget.
#[must_use]
#[allow(clippy::missing_panics_doc)]
pub fn serving_mixed() -> String {
    let engine = Engine::new(LlmConfig::opt1b3(), SEED);
    let baseline = run_mixed_point(&engine, None);
    let headline = run_mixed_point(&engine, Some(1024));
    assert_eq!(
        headline,
        run_mixed_point(&engine, Some(1024)),
        "mixed-step runs must replay byte-identically"
    );
    assert!(
        class_p95_tpot(&headline, Priority::Batch) < class_p95_tpot(&baseline, Priority::Batch),
        "piggybacking must cut batch-class p95 TPOT: {} vs {}",
        class_p95_tpot(&headline, Priority::Batch),
        class_p95_tpot(&baseline, Priority::Batch)
    );
    assert!(
        interactive_p95_ttft(&headline) <= interactive_p95_ttft(&baseline),
        "the TPOT win must not cost interactive TTFT: {} vs {}",
        interactive_p95_ttft(&headline),
        interactive_p95_ttft(&baseline)
    );

    let mut rows = Vec::new();
    for budget in [None, Some(512), Some(768), Some(1024), Some(2048)] {
        let r = match budget {
            None => baseline.clone(),
            Some(1024) => headline.clone(),
            _ => run_mixed_point(&engine, budget),
        };
        rows.push(vec![
            budget.map_or("none (alt)".to_owned(), |b| format!("{b}")),
            format!("{:.1}", class_p95_tpot(&r, Priority::Batch) * 1e3),
            format!("{:.1}", interactive_p95_ttft(&r) * 1e3),
            f2(r.goodput_tokens_per_s),
            format!("{:.0}%", r.steps.mixed_fraction() * 100.0),
            if r.steps.mean_budget_utilization > 0.0 {
                format!("{:.0}%", r.steps.mean_budget_utilization * 100.0)
            } else {
                "-".to_owned()
            },
            format!("{}", r.steps.steps),
            format!("{:.3}", r.duration_seconds),
        ]);
    }
    render_table(
        "serving mixed steps: step-token-budget sweep, same seeded trace (OPT-1.3B, keep 0.3, \
         priority scheduler, chunk 512; budget none = PR3 alternating baseline)",
        &[
            "budget tok",
            "batch p95 tpot ms",
            "inter p95 ttft ms",
            "tok/s",
            "mixed",
            "budget util",
            "steps",
            "duration s",
        ],
        &rows,
    )
}

// ---------------------------------------------------------------------
// serving_hetero: mixed-generation fleets and prefix-affinity routing
// ---------------------------------------------------------------------

/// Latency slowdown of the previous device generation (modeled by
/// wrapping the current accelerator in [`Derated`]).
const OLD_GEN_SLOWDOWN: f64 = 2.5;

/// The heterogeneous load-balancing trace: the bursty 2:1 length mix of
/// the fleet sweep, heavier so the slow generation's backlog matters.
fn hetero_trace() -> Workload {
    LoadGenerator {
        task_mix: vec![serve_task(), Task::cola().with_decode(32)],
        class_mix: vec![RequestClass::batch()],
        prefix_mix: vec![None],
        count: 64,
        process: ArrivalProcess::Bursty {
            rate_rps: 32.0,
            burst_factor: 8.0,
            burst_len: 8,
            seed: SEED,
        },
    }
    .generate()
}

/// One hetero point: the trace on a `[current gen, previous gen]` fleet
/// under one dispatch policy, throughputs calibrated from each
/// generation's own cost model at a reference decode point.
fn run_hetero_point(engine: &Engine, workload: &Workload, policy: DispatchPolicy) -> ServeReport {
    let model = LlmConfig::opt1b3();
    let old_gen = Derated::new(engine.simulator(), OLD_GEN_SLOWDOWN);
    let cfg = ServeConfig {
        kv_budget_bytes: Some(tight_budget(&model, 4)),
        ..ServeConfig::default()
    };
    let sim = engine.serve_sim(STANDARD_KEEP, cfg);
    let fast = sim.cost_model().decode_rate(512, 8);
    let fleet = [
        DeviceProfile::uniform().with_throughput(fast),
        DeviceProfile::uniform()
            .with_accel(&old_gen)
            .with_throughput(fast / OLD_GEN_SLOWDOWN),
    ];
    sim.run_fleet_profiles(workload, &fleet, policy, &mut || {
        Box::new(ContinuousBatchScheduler::new())
    })
}

/// The shared-prefix trace: two tenant system prompts (7680 of Dolly's
/// 8192 prompt tokens) alternated across interactive requests — a device
/// holding a prefix resident prefills 512 tokens instead of 8192.
fn prefix_trace() -> Workload {
    LoadGenerator {
        task_mix: vec![Task::dolly().with_decode(16)],
        class_mix: vec![RequestClass::interactive(2.0, 0.1)],
        prefix_mix: vec![
            Some(SharedPrefix::new(0, 7680)),
            Some(SharedPrefix::new(1, 7680)),
        ],
        count: 48,
        process: ArrivalProcess::Poisson {
            rate_rps: 0.6,
            seed: SEED,
        },
    }
    .generate()
}

/// One prefix-routing point: the shared-prefix trace on the same
/// two-generation fleet as table (a), with pools holding exactly **one**
/// resident prefix each (a second tenant's full prompt forces a
/// reclaim). Affinity-blind weighted JSQ concentrates both tenants on
/// the fast device and thrashes its prefix cache; affinity routing pins
/// each tenant to its holder.
fn run_prefix_point(engine: &Engine, workload: &Workload, policy: DispatchPolicy) -> ServeReport {
    let model = LlmConfig::opt1b3();
    let prefix_bytes = mcbp::serve::request_kv_bytes(&model, 7680, STANDARD_KEEP);
    let working = mcbp::serve::request_kv_bytes(
        &model,
        Task::dolly().with_decode(16).final_context(),
        STANDARD_KEEP,
    );
    let old_gen = Derated::new(engine.simulator(), OLD_GEN_SLOWDOWN);
    let cfg = ServeConfig {
        // One resident prefix plus suffix headroom per device: below two
        // full prefixes, above one prefix plus one full prompt's worth of
        // transient admission pressure.
        kv_budget_bytes: Some(prefix_bytes + working / 2),
        ..ServeConfig::default()
    };
    let sim = engine.serve_sim(STANDARD_KEEP, cfg);
    let fast = sim.cost_model().decode_rate(512, 8);
    let fleet = [
        DeviceProfile::uniform().with_throughput(fast),
        DeviceProfile::uniform()
            .with_accel(&old_gen)
            .with_throughput(fast / OLD_GEN_SLOWDOWN),
    ];
    sim.run_fleet_profiles(workload, &fleet, policy, &mut || {
        Box::new(ContinuousBatchScheduler::new())
    })
}

/// The heterogeneous-fleet experiment: (a) a two-generation fleet
/// (current MCBP + a 2.5× slower previous generation) on the bursty
/// length-skewed trace — plain JSQ is throughput-blind and parks half
/// the backlog on the slow device, weighted JSQ normalizes queue depth
/// by profile throughput and wins goodput (asserted); and (b)
/// prefix-affinity routing on a two-tenant shared-prefix trace whose
/// per-device pools hold only one resident prefix — affinity-blind
/// dispatch thrashes the prefix cache while affinity routing pins each
/// tenant to its holder, cutting interactive p95 TTFT (asserted). Both
/// headline points are replay-checked.
#[must_use]
#[allow(clippy::missing_panics_doc)]
pub fn serving_hetero() -> String {
    let engine = Engine::new(LlmConfig::opt1b3(), SEED);
    let mut out = String::new();

    // ---- (a) two-generation fleet: policy sweep ----
    let workload = hetero_trace();
    let mut rows = Vec::new();
    let mut goodput = |policy: DispatchPolicy| {
        let r = run_hetero_point(&engine, &workload, policy);
        rows.push(vec![
            policy.name().to_owned(),
            f2(r.goodput_tokens_per_s),
            format!("{:.1}", r.ttft.p95 * 1e3),
            format!("{}|{}", r.devices[0].dispatched, r.devices[1].dispatched),
            format!(
                "{:.0}%|{:.0}%",
                r.devices[0].utilization * 100.0,
                r.devices[1].utilization * 100.0
            ),
        ]);
        r
    };
    let rr = goodput(DispatchPolicy::RoundRobin);
    let jsq = goodput(DispatchPolicy::JoinShortestQueue);
    let wjsq = goodput(DispatchPolicy::WeightedJsq);
    assert_eq!(
        wjsq,
        run_hetero_point(&engine, &workload, DispatchPolicy::WeightedJsq),
        "hetero fleet runs must replay byte-identically"
    );
    assert!(
        wjsq.goodput_tokens_per_s > jsq.goodput_tokens_per_s,
        "weighted JSQ must beat plain JSQ on a mixed-generation fleet: {} vs {}",
        wjsq.goodput_tokens_per_s,
        jsq.goodput_tokens_per_s
    );
    let _ = &rr; // shown for context; the asserted claim is the JSQ comparison
    out.push_str(&render_table(
        "hetero fleet: current gen + 2.5x slower previous gen (OPT-1.3B, keep 0.3, bursty 2:1 \
         length mix; throughput-weighted JSQ vs throughput-blind policies, asserted)",
        &["policy", "tok/s", "p95 ttft ms", "disp f|s", "util f|s"],
        &rows,
    ));

    // ---- (b) prefix-affinity routing ----
    let workload = prefix_trace();
    let mut rows = Vec::new();
    let mut ttft = |policy: DispatchPolicy| {
        let r = run_prefix_point(&engine, &workload, policy);
        rows.push(vec![
            policy.name().to_owned(),
            format!("{:.0}", interactive_p95_ttft(&r) * 1e3),
            format!("{}/{}", r.prefix.hits, r.prefix.hits + r.prefix.misses),
            format!("{}", r.prefix.reused_tokens),
            format!("{}", r.prefix.reclaimed),
            f2(r.goodput_tokens_per_s),
        ]);
        r
    };
    let blind = ttft(DispatchPolicy::WeightedJsq);
    let affine = ttft(DispatchPolicy::PrefixAffinity);
    assert_eq!(
        affine,
        run_prefix_point(&engine, &workload, DispatchPolicy::PrefixAffinity),
        "prefix-affinity runs must replay byte-identically"
    );
    assert!(
        affine.prefix.hits > blind.prefix.hits,
        "affinity routing must raise the prefix hit count: {} vs {}",
        affine.prefix.hits,
        blind.prefix.hits
    );
    assert!(
        interactive_p95_ttft(&affine) < interactive_p95_ttft(&blind),
        "prefix affinity must cut interactive p95 TTFT vs affinity-blind dispatch: {} vs {}",
        interactive_p95_ttft(&affine),
        interactive_p95_ttft(&blind)
    );
    out.push('\n');
    out.push_str(&render_table(
        "prefix routing: two 7680-token tenant prefixes on the two-generation fleet, one \
         resident prefix per device (OPT-1.3B, keep 0.3; blind wjsq thrashes the cache, asserted)",
        &[
            "policy",
            "inter p95 ttft ms",
            "prefix hits",
            "tok reused",
            "reclaims",
            "tok/s",
        ],
        &rows,
    ));
    out
}

// ---------------------------------------------------------------------
// serving_models: the scale sweep across the five paper models
// ---------------------------------------------------------------------

/// One serving-capacity point: a closed-loop population of the serving
/// task on one accelerator (scaled by the §5.3 `fleet` model) with a
/// model-relative tight pool.
fn run_model_point(accel: &dyn Accelerator, model: &LlmConfig, fleet: Fleet) -> ServeReport {
    let cfg = ServeConfig {
        kv_budget_bytes: Some(tight_budget(model, 8)),
        fleet,
        ..ServeConfig::default()
    };
    let template = context(model, &Task::cola(), 1, STANDARD_KEEP);
    let sim = ServeSim::new(accel, template, cfg);
    let load = LoadGenerator::uniform(
        serve_task(),
        24,
        ArrivalProcess::ClosedLoop { concurrency: 8 },
    )
    .generate();
    sim.run(&load, &mut ContinuousBatchScheduler::new())
}

/// The scale sweep: serving capacity (closed-loop goodput, p95 TPOT,
/// energy per token) across the five paper models — the paper's §5.3
/// iso-TOPS serving instance (148 MCBP processors ≈ one A100's 624 INT8
/// TOPS, tensor-parallel with the communication tax) vs the
/// `mcbp_baselines::GpuA100` roofline on identical traces and identical
/// KV pools: the serving restatement of the Fig 20 comparison. MCBP's
/// goodput advantage must hold on every model (asserted).
#[must_use]
#[allow(clippy::missing_panics_doc)]
pub fn serving_models() -> String {
    let iso_tops = Fleet::iso_tops(624.0, 4.2);
    let mut rows = Vec::new();
    for model in LlmConfig::paper_suite() {
        let engine = Engine::new(model.clone(), SEED);
        let gpu = mcbp::baselines::GpuA100::dense();
        let ours = run_model_point(engine.simulator(), &model, iso_tops);
        let theirs = run_model_point(&gpu, &model, Fleet::single());
        assert_eq!(ours.completed, 24, "{}", model.name);
        assert_eq!(theirs.completed, 24, "{}", model.name);
        assert!(
            ours.goodput_tokens_per_s > theirs.goodput_tokens_per_s,
            "{}: MCBP serving goodput must beat the A100 roofline ({} vs {})",
            model.name,
            ours.goodput_tokens_per_s,
            theirs.goodput_tokens_per_s
        );
        let per_token = |r: &ServeReport| {
            let tokens: usize = r
                .records
                .iter()
                .filter(|rec| rec.completed())
                .map(|rec| rec.tokens)
                .sum();
            r.energy_joules * 1e3 / tokens.max(1) as f64
        };
        assert!(
            per_token(&ours) < per_token(&theirs),
            "{}: MCBP energy per token must beat the A100 roofline ({} vs {} mJ/tok)",
            model.name,
            per_token(&ours),
            per_token(&theirs)
        );
        rows.push(vec![
            model.name.to_owned(),
            f2(ours.goodput_tokens_per_s),
            f2(theirs.goodput_tokens_per_s),
            format!(
                "{:.2}x",
                ours.goodput_tokens_per_s / theirs.goodput_tokens_per_s
            ),
            format!("{:.1}", ours.tpot.p95 * 1e3),
            format!("{:.1}", theirs.tpot.p95 * 1e3),
            format!("{:.3}", per_token(&ours)),
            format!("{:.3}", per_token(&theirs)),
        ]);
    }
    render_table(
        "serving capacity across the paper suite: iso-TOPS MCBP instance (148 devices, Sec 5.3) \
         vs A100 roofline, identical closed-loop traces and pools (keep 0.3, 8-deep population; \
         goodput win asserted)",
        &[
            "model",
            "mcbp tok/s",
            "a100 tok/s",
            "speedup",
            "mcbp p95 tpot ms",
            "a100 p95 tpot ms",
            "mcbp mJ/tok",
            "a100 mJ/tok",
        ],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_policies_complete_the_trace_and_break_down_per_device() {
        let engine = Engine::new(LlmConfig::opt1b3(), SEED);
        for policy in [
            DispatchPolicy::RoundRobin,
            DispatchPolicy::JoinShortestQueue,
        ] {
            let r = run_fleet_point(&engine, 2, policy);
            assert_eq!(r.completed + r.dropped, 48, "{policy:?}");
            assert_eq!(r.devices.len(), 2, "{policy:?}");
            let dispatched: usize = r.devices.iter().map(|d| d.dispatched).sum();
            assert_eq!(dispatched, 48, "{policy:?}");
            assert!(
                r.devices.iter().all(|d| d.dispatched > 0),
                "{policy:?} must use both devices"
            );
        }
    }

    #[test]
    fn priority_preemption_wins_interactive_slo_goodput_under_overload() {
        let model = LlmConfig::opt1b3();
        let engine = Engine::new(model.clone(), SEED);
        let budget = tight_budget(&model, 2);
        let fcfs = run_slo_point(
            &engine,
            budget,
            &mut FcfsScheduler::new(),
            EvictionPolicy::None,
        );
        let cb = run_slo_point(
            &engine,
            budget,
            &mut ContinuousBatchScheduler::new(),
            EvictionPolicy::None,
        );
        let preempt = run_slo_point(
            &engine,
            budget,
            &mut PriorityScheduler::new(),
            EvictionPolicy::DropRecompute,
        );
        assert!(preempt.preempt.preemptions > 0, "overload must evict");
        let inter = |r: &ServeReport| r.slo_goodput_for(Priority::Interactive);
        assert!(
            inter(&preempt) > inter(&cb) && inter(&preempt) > inter(&fcfs),
            "priority preemption {} vs cb {} vs fcfs {}",
            inter(&preempt),
            inter(&cb),
            inter(&fcfs)
        );
    }

    #[test]
    fn eviction_overhead_crosses_over_with_context() {
        let engine = Engine::new(LlmConfig::opt1b3(), SEED);
        let short = serve_task();
        let long = Task::dolly().with_decode(16);
        let overhead = |task: &Task, policy| {
            let r = run_crossover_point(&engine, task, policy);
            assert!(r.preempt.preemptions > 0, "contention must evict");
            assert_eq!(r.completed, 2, "both requests must still complete");
            r.preempt.overhead_seconds()
        };
        assert!(
            overhead(&short, EvictionPolicy::DropRecompute)
                < overhead(&short, EvictionPolicy::Swap),
            "drop-and-recompute must win at short contexts"
        );
        assert!(
            overhead(&long, EvictionPolicy::Swap) < overhead(&long, EvictionPolicy::DropRecompute),
            "swap must win at long contexts"
        );
    }

    #[test]
    fn mixed_steps_cut_batch_tpot_at_equal_interactive_ttft() {
        let engine = Engine::new(LlmConfig::opt1b3(), SEED);
        let baseline = run_mixed_point(&engine, None);
        let mixed = run_mixed_point(&engine, Some(1024));
        assert!(mixed.steps.mixed_steps > 0, "{:?}", mixed.steps);
        assert_eq!(baseline.steps.mixed_steps, 0);
        assert!(
            class_p95_tpot(&mixed, Priority::Batch) < class_p95_tpot(&baseline, Priority::Batch),
            "batch p95 TPOT: mixed {} vs alternating {}",
            class_p95_tpot(&mixed, Priority::Batch),
            class_p95_tpot(&baseline, Priority::Batch)
        );
        assert!(
            interactive_p95_ttft(&mixed) <= interactive_p95_ttft(&baseline),
            "interactive p95 TTFT: mixed {} vs alternating {}",
            interactive_p95_ttft(&mixed),
            interactive_p95_ttft(&baseline)
        );
        assert_eq!(mixed.completed + mixed.dropped, 18);
        assert_eq!(baseline.completed + baseline.dropped, 18);
    }

    #[test]
    fn serving_sweep_prefers_continuous_batching() {
        let model = LlmConfig::opt1b3();
        let engine = Engine::new(model.clone(), SEED);
        let budget = tight_budget(&model, 8);
        let fcfs = run_point(&engine, 0.3, budget, 8.0, &mut FcfsScheduler::new());
        let cb = run_point(
            &engine,
            0.3,
            budget,
            8.0,
            &mut ContinuousBatchScheduler::new(),
        );
        assert!(
            cb.goodput_tokens_per_s > fcfs.goodput_tokens_per_s,
            "cb {} vs fcfs {}",
            cb.goodput_tokens_per_s,
            fcfs.goodput_tokens_per_s
        );
    }
}
