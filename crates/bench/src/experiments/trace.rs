//! Trace record/replay + sampled-simulation experiment: record a
//! multi-hour diurnal serving run, round-trip it through the binary
//! trace format, prove the replay reproduces the original report
//! bit-exactly, then run the SimPoint-style phase sampler and show it
//! recovers full-run goodput and interactive p95 TTFT from a small
//! fraction of the simulated steps. Every claim in the rendered table
//! is also asserted, so `repro serving_trace` doubles as an
//! acceptance test.

use mcbp::prelude::*;
use mcbp::serve::{ArrivalProcess, LoadGenerator, PriorityScheduler, RequestClass, Workload};
use mcbp::trace::{
    from_bytes, interactive_ttft_p95, to_bytes, verify_replay, SampledSim, SamplerConfig,
    TraceStats,
};

use crate::{f2, render_table, SEED, STANDARD_KEEP};

/// The recorded workload: a ~3-hour diurnal trace (hour-long period,
/// 70% swing) of MNLI-shaped prompts, half interactive with a TTFT
/// SLO, half batch.
fn diurnal_day(count: usize) -> Workload {
    LoadGenerator {
        task_mix: vec![Task::mnli().with_decode(32)],
        class_mix: vec![RequestClass::interactive(1.0, 0.1), RequestClass::batch()],
        prefix_mix: vec![None],
        count,
        process: ArrivalProcess::Diurnal {
            rate_rps: 0.15,
            amplitude: 0.7,
            period_s: 3600.0,
            seed: SEED,
        },
    }
    .generate()
}

/// Record → serialize → replay → sample. Asserts the paper-style
/// acceptance bounds: bit-exact replay, ≤20% of full-run steps
/// simulated (≥5× reduction), and ≤5% relative error on goodput and
/// interactive p95 TTFT.
#[must_use]
pub fn serving_trace() -> String {
    let engine = Engine::new(LlmConfig::opt1b3(), SEED);
    let sim = engine.serve_sim(STANDARD_KEEP, ServeConfig::default());
    let load = diurnal_day(1536);

    // Record the full run and check recording is a pure observer.
    let (full, trace) = sim.run_traced(&load, &mut PriorityScheduler::new());
    assert_eq!(full, sim.run(&load, &mut PriorityScheduler::new()));

    // Round-trip the binary format and replay the restored trace:
    // the report must reproduce bit-exactly.
    let bytes = to_bytes(&trace).expect("trace serializes");
    let restored = from_bytes(&bytes).expect("trace deserializes");
    assert_eq!(trace, restored);
    let replayed = verify_replay(&restored, &full, |w| {
        sim.run(w, &mut PriorityScheduler::new())
    })
    .expect("replay is bit-exact");
    assert_eq!(replayed, full);
    let stats = TraceStats::collect(&restored, bytes.len() as u64);

    // Sampled simulation: cluster the recorded windows into phases and
    // simulate only the representatives.
    // 96 windows (~2-minute granularity over the ~3-hour span) give the
    // clusterer enough resolution to isolate the diurnal peak, trough,
    // and the two shoulders; four phases then cover the day with ~7% of
    // the full run's steps.
    let sampler = SampledSim::new(SamplerConfig {
        windows: 96,
        clusters: 4,
        ..SamplerConfig::default()
    });
    let sampled = sampler
        .run(&restored, &mut |w| {
            sim.run(w, &mut PriorityScheduler::new())
        })
        .expect("sampling succeeds");

    let step_fraction = sampled.step_fraction();
    let goodput_err = sampled.goodput_error(&full);
    let ttft_err = sampled.ttft_p95_error(&full);
    let full_ttft = interactive_ttft_p95(&full);
    assert!(
        step_fraction <= 0.20,
        "sampled sim ran {:.1}% of full-run steps (want ≤20%)",
        step_fraction * 100.0
    );
    assert!(
        goodput_err <= 0.05,
        "goodput error {:.2}% (want ≤5%): sampled {} vs full {}",
        goodput_err * 100.0,
        sampled.goodput_tokens_per_s,
        full.goodput_tokens_per_s
    );
    assert!(
        ttft_err <= 0.05,
        "interactive p95 TTFT error {:.2}% (want ≤5%): sampled {} vs full {}",
        ttft_err * 100.0,
        sampled.interactive_ttft_p95_s,
        full_ttft
    );

    let rows = vec![
        vec![
            "full".into(),
            format!("{}", full.steps.steps),
            "100.0".into(),
            f2(full.goodput_tokens_per_s),
            "—".into(),
            format!("{:.4}", full_ttft),
            "—".into(),
        ],
        vec![
            "sampled".into(),
            format!("{}", sampled.simulated_steps),
            format!("{:.1}", step_fraction * 100.0),
            f2(sampled.goodput_tokens_per_s),
            format!("{:.2}%", goodput_err * 100.0),
            format!("{:.4}", sampled.interactive_ttft_p95_s),
            format!("{:.2}%", ttft_err * 100.0),
        ],
    ];
    let mut out = render_table(
        &format!(
            "Sampled simulation of a {:.1}-hour diurnal trace ({} phases, replay bit-exact)",
            stats.span_seconds / 3600.0,
            sampled.phases.len()
        ),
        &[
            "run",
            "steps",
            "steps %",
            "goodput tok/s",
            "err",
            "p95 TTFT s",
            "err",
        ],
        &rows,
    );
    out.push_str(&format!(
        "\n{stats}\nspeedup: {:.1}x fewer simulated steps\n",
        1.0 / step_fraction
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The experiment's asserts are the acceptance criteria; running it
    /// end-to-end (on the same trace the CLI uses) is the test.
    #[test]
    fn serving_trace_meets_its_bounds() {
        let out = serving_trace();
        assert!(out.contains("sampled"));
        assert!(out.contains("speedup"));
    }
}
