//! Architecture-evaluation experiments: Fig 19 (ablations), Fig 20
//! (GPU comparison), Fig 21 (gain breakdown), Table 3, Fig 22 (area/power).

use mcbp::prelude::*;
use mcbp_baselines::GpuA100;
use mcbp_sim::PowerReport;
use mcbp_workloads::RunReport;

use crate::{context, f2, pct, render_table, STANDARD_KEEP};

fn mcbp_variants() -> [(&'static str, McbpConfig); 4] {
    [
        ("Baseline", McbpConfig::ablation_baseline()),
        (
            "+BRCR",
            McbpConfig {
                enable_brcr: true,
                ..McbpConfig::ablation_baseline()
            },
        ),
        (
            "+BSTC",
            McbpConfig {
                enable_brcr: true,
                enable_bstc: true,
                ..McbpConfig::ablation_baseline()
            },
        ),
        ("+BGPP", McbpConfig::default()),
    ]
}

fn run_variant(cfg: &McbpConfig, model: &LlmConfig, task: &Task, batch: usize) -> RunReport {
    McbpSim::new(cfg.clone()).run(&context(model, task, batch, STANDARD_KEEP))
}

/// Fig 19: (a) cumulative latency reduction of BRCR/BSTC/BGPP per model
/// (batch 8, task mix), and (b) per-technique effects on Dolly and MBPP
/// across prompt/decode lengths.
#[must_use]
pub fn fig19() -> String {
    // ---- (a): cumulative ablation per model ----
    let tasks = [
        Task::cola(),
        Task::wikitext2(),
        Task::wikilingua(),
        Task::mbpp(),
        Task::dolly(),
    ];
    let mut rows = Vec::new();
    for model in LlmConfig::paper_suite() {
        let mut cells = vec![model.name.to_owned()];
        let base: f64 = tasks
            .iter()
            .map(|t| run_variant(&McbpConfig::ablation_baseline(), &model, t, 8).total_cycles())
            .sum();
        for (_, cfg) in mcbp_variants() {
            let total: f64 = tasks
                .iter()
                .map(|t| run_variant(&cfg, &model, t, 8).total_cycles())
                .sum();
            cells.push(f2(total / base));
        }
        rows.push(cells);
    }
    let mut out = render_table(
        "Fig 19(a) - normalized latency: cumulative ablation (batch=8, 5-task mix)",
        &["model", "Baseline", "+BRCR", "+BSTC", "+BGPP"],
        &rows,
    );

    // ---- (b): separate effect per technique, Dolly & MBPP ----
    let mut rows_b = Vec::new();
    let model = LlmConfig::llama7b();
    let scenarios = [
        (
            "Dolly p=1k",
            Task::dolly().with_prompt(1024).with_decode(48),
        ),
        (
            "Dolly p=4k",
            Task::dolly().with_prompt(4096).with_decode(48),
        ),
        ("MBPP d=1k", Task::mbpp().with_prompt(48).with_decode(1024)),
        ("MBPP d=4k", Task::mbpp().with_prompt(48).with_decode(4096)),
    ];
    for (name, task) in scenarios {
        let base = run_variant(&McbpConfig::ablation_baseline(), &model, &task, 8).total_cycles();
        let solo = |cfg: McbpConfig| base / run_variant(&cfg, &model, &task, 8).total_cycles();
        let brcr = solo(McbpConfig {
            enable_brcr: true,
            ..McbpConfig::ablation_baseline()
        });
        let bstc = solo(McbpConfig {
            enable_bstc: true,
            ..McbpConfig::ablation_baseline()
        });
        let bgpp = solo(McbpConfig {
            enable_bgpp: true,
            ..McbpConfig::ablation_baseline()
        });
        rows_b.push(vec![name.to_owned(), f2(brcr), f2(bstc), f2(bgpp)]);
    }
    out.push('\n');
    out.push_str(&render_table(
        "Fig 19(b) - speedup of each technique applied alone (Llama7B, batch=8)",
        &["scenario", "BRCR", "BSTC", "BGPP"],
        &rows_b,
    ));
    out.push_str(
        "shape check: BRCR dominates prompt-heavy Dolly; BSTC/BGPP dominate decode-heavy MBPP,\n\
         with BGPP overtaking BSTC as the decode context grows\n",
    );
    out
}

/// Fig 20: throughput and energy-efficiency gain over the A100 (the paper
/// matches peak INT8 TOPS with 148 MCBP devices under data/model
/// parallelism), plus the bit-shift overhead breakdown of Fig 20(c).
#[must_use]
pub fn fig20() -> String {
    let fleet = mcbp::Fleet {
        devices: 148,
        scaling_efficiency: mcbp::Fleet::efficiency_for(148),
    };
    let mut rows = Vec::new();
    let task = Task::wikilingua();
    let mut speed_s = Vec::new();
    let mut speed_a = Vec::new();
    let mut eff_s = Vec::new();
    for model in LlmConfig::paper_suite() {
        let ctx8 = context(&model, &task, 8, STANDARD_KEEP);
        // The aggressive point trades <=1% fidelity for more attention
        // sparsity (Fig 24a: alpha 0.45 ~ keep 0.22 vs 0.30).
        let ctx8_aggressive = context(&model, &task, 8, 0.22);
        let ctx128 = context(&model, &task, 128, STANDARD_KEEP);
        let gpu = GpuA100::dense();
        let gpu_sw = GpuA100::with_mcbp_algorithms();
        let t_gpu8 = gpu.run(&ctx8).total_cycles();
        let t_gpu128 = gpu.run(&ctx128).total_cycles() / (128.0 / 8.0);
        let t_sw = gpu_sw.run(&ctx8).total_cycles();

        let std = McbpSim::new(McbpConfig::default());
        let agg = McbpSim::new(McbpConfig::aggressive());
        let (r_std, e_std) = std.run_detailed(&ctx8);
        let (r_agg, _) = agg.run_detailed(&ctx8_aggressive);
        let t_std = fleet.scale(&r_std).total_cycles();
        let t_agg = fleet.scale(&r_agg).total_cycles();

        // Energy efficiency: ops per joule, device-intensive.
        let p_std = PowerReport::from_run(std.config(), &r_std, e_std);
        let macs = 1.0; // common numerator cancels in the ratio below
        let gpu_j = t_gpu8 * 1e-9 * 300.0; // ~300 W dynamic A100
        let mcbp_j = r_std.total_cycles() * 1e-9 * p_std.total_w();
        let eff_gain = gpu_j / mcbp_j * macs;

        speed_s.push(t_gpu8 / t_std);
        speed_a.push(t_gpu8 / t_agg);
        eff_s.push(eff_gain);
        rows.push(vec![
            model.name.to_owned(),
            f2(t_gpu8 / t_gpu128),
            f2(t_gpu8 / t_sw),
            f2(t_gpu8 / t_std),
            f2(t_gpu8 / t_agg),
            f2(eff_gain),
        ]);
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let mut out = render_table(
        &format!(
            "Fig 20(a)(b) - gain over A100 (batch=8; MCBP fleet of {} devices, {:.0}% scaling efficiency)",
            fleet.devices,
            fleet.scaling_efficiency * 100.0
        ),
        &["model", "GPU B=128", "GPU+sw", "MCBP(S)", "MCBP(A)", "energy eff."],
        &rows,
    );
    out.push_str(&format!(
        "mean speedup: standard {:.2}x, aggressive {:.2}x (paper: 8.72x / 9.43x); mean efficiency {:.1}x (paper: 29.2x/31.1x)\n",
        mean(&speed_s),
        mean(&speed_a),
        mean(&eff_s)
    ));

    // ---- (c): bit-shift overhead ----
    let cfg = McbpConfig::default();
    let shift_share = cfg.shift_overhead / (1.0 + cfg.shift_overhead);
    out.push_str(&format!(
        "\nFig 20(c) - bit-shift overhead: {} of compute adds are shift-accumulates\n\
         (paper: 17.1%; the 3x net latency win over value-level execution absorbs it)\n",
        pct(shift_share)
    ));
    out
}

/// Fig 21: software-vs-hardware gain decomposition per technique.
#[must_use]
pub fn fig21() -> String {
    let model = LlmConfig::llama7b();
    let task = Task::wikilingua();
    let ctx = context(&model, &task, 8, STANDARD_KEEP);

    // Software: cumulative schemes on the GPU.
    let g0 = GpuA100::dense().run(&ctx).total_cycles();
    let g1 = GpuA100::with_schemes(true, false, false)
        .run(&ctx)
        .total_cycles();
    let g2 = GpuA100::with_schemes(true, true, false)
        .run(&ctx)
        .total_cycles();
    let g3 = GpuA100::with_schemes(true, true, true)
        .run(&ctx)
        .total_cycles();

    // Hardware: cumulative ablation on the accelerator.
    let m: Vec<f64> = mcbp_variants()
        .iter()
        .map(|(_, cfg)| McbpSim::new(cfg.clone()).run(&ctx).total_cycles())
        .collect();

    let rows = vec![
        vec![
            "BRCR".to_owned(),
            f2(g0 / g1),
            f2(m[0] / m[1]),
            "1.2x / 2.88x".to_owned(),
        ],
        vec![
            "BSTC".to_owned(),
            f2(g1 / g2),
            f2(m[1] / m[2]),
            "1.44x / 2.19x".to_owned(),
        ],
        vec![
            "BGPP".to_owned(),
            f2(g2 / g3),
            f2(m[2] / m[3]),
            "1.23x / 1.48x".to_owned(),
        ],
    ];
    let mut out = render_table(
        "Fig 21 - per-technique gain: software (on GPU) vs hardware (on MCBP)",
        &[
            "technique",
            "software gain",
            "hardware gain",
            "paper (sw/hw)",
        ],
        &rows,
    );
    out.push_str(
        "shape check: every technique gains more with its dedicated hardware than on the GPU\n",
    );
    out
}

/// Table 3: the hardware configuration summary.
#[must_use]
pub fn tab3() -> String {
    let mut out = String::from("Table 3 - MCBP hardware configuration\n");
    out.push_str(&McbpConfig::default().table3());
    out.push('\n');
    out
}

/// Fig 22: area and power breakdown.
#[must_use]
pub fn fig22() -> String {
    let area = PowerReport::area();
    let b = area.breakdown();
    let mut out = String::from("Fig 22(a) - area breakdown (TSMC 28 nm)\n");
    out.push_str(&format!(
        "total {:.2} mm^2 | BRCR {:.2} | SRAM {:.2} | APU {:.2} | scheduler {:.2} | BSTC {:.2} | BGPP {:.2}\n",
        b.total_mm2(),
        b.brcr_mm2,
        b.sram_mm2,
        b.apu_mm2,
        b.scheduler_mm2,
        b.bstc_mm2,
        b.bgpp_mm2
    ));

    let model = LlmConfig::llama7b();
    let sim = McbpSim::new(McbpConfig::default());
    let ctx = context(&model, &Task::wikilingua(), 8, STANDARD_KEEP);
    let (r, e) = sim.run_detailed(&ctx);
    let p = PowerReport::from_run(sim.config(), &r, e);
    out.push_str("\nFig 22(b) - simulated power breakdown (Llama7B, Wikilingua, batch=8)\n");
    out.push_str(&p.render());
    out.push_str("\n(paper: 2.395 W total; DRAM 47.6%, core 37.3% with BRCR 44.7% of core)\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig19_table_is_normalized() {
        let t = fig19();
        assert!(t.contains("Baseline"));
        assert!(t.contains("1.00"), "baseline column must be 1.00:\n{t}");
    }

    #[test]
    fn tab3_prints_configuration() {
        assert!(tab3().contains("PE clusters"));
    }

    #[test]
    fn fig22_totals_match_paper_area() {
        let t = fig22();
        assert!(t.contains("9.5"), "{t}");
    }
}
