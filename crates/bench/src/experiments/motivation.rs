//! Motivation and algorithm-analysis experiments: Fig 1(a), Fig 4,
//! Fig 5(a–g), Fig 8(b)(c), Fig 18, Table 2.

use mcbp::prelude::*;
use mcbp_baselines::GpuA100;
use mcbp_bgpp::{exact_top_k, recall_against};
use mcbp_bitslice::stats::{unique_full_columns, unique_group_patterns};
use mcbp_bitslice::BitMatrix;
use mcbp_brcr::{cost, factorize::factorize};
use mcbp_bstc::analytics;
use mcbp_model::{fidelity, KeepAll, QuantTransformer, Transformer, TransformerConfig};

use crate::{context, f2, pct, render_table, SEED, STANDARD_KEEP};

/// Fig 1(a): end-to-end latency breakdown for Llama-7B (batch 4, 16 decode
/// tokens) on the GPU model across prompt lengths.
#[must_use]
pub fn fig1a() -> String {
    let model = LlmConfig::llama7b();
    let gpu = GpuA100::dense();
    let mut rows = Vec::new();
    for exp in 10..=17 {
        let prompt = 1usize << exp;
        let task = Task::dolly().with_prompt(prompt).with_decode(16);
        let ctx = context(&model, &task, 4, 1.0);
        let r = gpu.run(&ctx);
        let gemm = r.prefill.gemm_cycles + r.decode.gemm_cycles;
        let weight = r.prefill.weight_load_cycles + r.decode.weight_load_cycles;
        let kv = r.prefill.kv_load_cycles + r.decode.kv_load_cycles;
        let other = r.prefill.other_cycles + r.decode.other_cycles;
        let total = gemm + weight + kv + other;
        rows.push(vec![
            format!("{}k", prompt / 1024),
            pct(gemm / total),
            pct(weight / total),
            pct(kv / total),
            pct(other / total),
        ]);
    }
    render_table(
        "Fig 1(a) - Llama7B end-to-end latency breakdown on A100 model (batch=4, decode=16)",
        &["prompt", "GEMM", "weight load", "KV load", "other"],
        &rows,
    )
}

/// Fig 4: the 2-bit toy example — value-level zeros/repetition vs bit-slice
/// zeros/repetition, and the E×I×X factorization add counts.
#[must_use]
pub fn fig4() -> String {
    // The 2-bit value matrix of Fig 4(a).
    let vals = [
        [0i32, 1, 0, 0, 1],
        [0, 1, 0, 1, 1],
        [1, 3, 1, 1, 3],
        [1, 2, 1, 1, 2],
    ];
    // Decompose by hand into the paper's MSB/LSB planes.
    let value = IntMatrix::from_rows(2 + 1, &vals).expect("toy values fit");
    let mut msb = BitMatrix::zeros(4, 5);
    let mut lsb = BitMatrix::zeros(4, 5);
    for r in 0..4 {
        for c in 0..5 {
            let v = value.get(r, c);
            msb.set(r, c, v & 2 != 0);
            lsb.set(r, c, v & 1 != 0);
        }
    }
    let value_zeros = value.as_flat().iter().filter(|v| **v == 0).count();
    let msb_zeros = 20 - msb.count_ones() as usize;
    let lsb_unique = unique_full_columns(&lsb);
    let f = factorize(&lsb, 0, 4);
    let mut out = String::new();
    out.push_str("Fig 4 - bit-level sparsity and repetition on the 2-bit toy matrix\n");
    out.push_str(&format!(
        "value-level zeros: {value_zeros}/20; value-level repeated columns: 0\n"
    ));
    out.push_str(&format!("MSB plane zeros: {msb_zeros}/20 (70% sparsity)\n"));
    out.push_str(&format!(
        "LSB plane distinct columns: {lsb_unique}/5 => {} repeated\n",
        5 - lsb_unique
    ));
    out.push_str(&format!(
        "E*I*X factorization: naive {} adds -> merge {} + reconstruct {} adds ({} saved)\n",
        f.naive_adds,
        f.merge_adds,
        f.reconstruct_adds,
        pct(f.savings()),
    ));
    out
}

/// Fig 5(a)(b): full-size vs group-wise merging — repetition opportunity
/// and computation reduction across the five models.
#[must_use]
pub fn fig5ab() -> String {
    let mut rows = Vec::new();
    let mut ratio_sum = 0.0;
    for model in LlmConfig::paper_suite() {
        let gen = WeightGenerator::for_model(&model);
        let w = gen.quantized_sample(64, 1024, SEED);
        let planes = BitPlanes::from_matrix(&w);
        // Repetition on the densest (LSB) plane: distinct full columns vs
        // distinct 4-row group patterns.
        let plane = planes.magnitude(0);
        let full_unique = unique_full_columns(plane);
        let grouped_unique = unique_group_patterns(plane, 0, 4);
        // Computation reduction vs dense bit-serial: vanilla full-size
        // merge realizes no repetition (unique ~ H) => reduction ~1; the
        // grouped merge is measured from the profile.
        let profile = SparsityProfile::measure(&w, 4);
        let dense = profile.dense_bit_serial_adds(64, 1024);
        let grouped = profile.brcr_latency_passes(64, 1024);
        let full_size = profile.naive_bit_serial_adds(64, 1024); // ones count: best case of full-size merge
        let grouped_red = dense / grouped;
        let full_red = dense / full_size;
        ratio_sum += grouped_red / full_red;
        rows.push(vec![
            model.name.to_owned(),
            format!("{full_unique}/1024"),
            format!("{grouped_unique}/16"),
            f2(full_red),
            f2(grouped_red),
        ]);
    }
    let mut out = render_table(
        "Fig 5(a)(b) - repetition and computation reduction: full-size vs group-wise merge",
        &[
            "model",
            "uniq full cols (LSB)",
            "uniq 4-row patterns",
            "full-size red.",
            "group-wise red.",
        ],
        &rows,
    );
    out.push_str(&format!(
        "group-wise merge vs sparsity-aware full-size merge: {:.2}x mean advantage;\n         a pure repetition-only full-size merge finds no repeats at all (distinct\n         columns = H), so its reduction is 1.0x and the grouped advantage is the\n         full group-wise column (paper reports 5.1x)\n",
        ratio_sum / 5.0
    ));
    out
}

/// Fig 5(c)(d): value sparsity vs bit sparsity across the five models.
#[must_use]
pub fn fig5cd() -> String {
    let mut rows = Vec::new();
    let mut ratio_sum = 0.0;
    for model in LlmConfig::paper_suite() {
        let gen = WeightGenerator::for_model(&model);
        let w = gen.quantized_sample(96, 1024, SEED);
        let p = SparsityProfile::measure(&w, 4);
        ratio_sum += p.bit_to_value_ratio();
        rows.push(vec![
            model.name.to_owned(),
            pct(p.value_sparsity),
            pct(p.mean_bit_sparsity),
            f2(p.bit_to_value_ratio()),
        ]);
    }
    let mut out = render_table(
        "Fig 5(c)(d) - value sparsity vs bit sparsity (SM format, INT8 PTQ)",
        &["model", "value sparsity", "bit sparsity", "bit/value ratio"],
        &rows,
    );
    out.push_str(&format!(
        "mean ratio: {:.1}x (paper: 10.1x)\n",
        ratio_sum / 5.0
    ));
    out
}

/// Fig 5(f)(g): the top-k prediction bottleneck and KV-access reduction
/// of progressive bit-grained prediction.
#[must_use]
pub fn fig5fg() -> String {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut out = String::new();

    // --- (f): dense attention vs value-level top-k latency shares ---
    // Dense formal compute = S per query; top-k: prediction 4/8 of dense
    // compute + formal on the kept fraction.
    let keep = STANDARD_KEEP;
    let dense = 1.0;
    let prediction = 0.5; // 4-bit pre-compute over all keys
    let formal = keep;
    let topk_total = prediction + formal;
    out.push_str("Fig 5(f) - attention latency: dense vs value-level top-k (normalized)\n");
    out.push_str(&format!("dense attention:   compute {:.2}\n", dense));
    out.push_str(&format!(
        "top-k attention:   prediction {:.2} + formal {:.2} = {:.2} ({} saved; prediction is {} of the remainder)\n",
        prediction,
        formal,
        topk_total,
        pct(1.0 - topk_total),
        pct(prediction / topk_total)
    ));

    // --- (g): measured KV traffic on three scenarios ---
    // Traffic counts both K and V: prediction touches K only; the formal
    // stage fetches the kept keys' remaining bits plus their V rows.
    let mut rows = Vec::new();
    let keep_target = STANDARD_KEEP;
    for (name, s) in [
        ("Llama7B-cola", 256usize),
        ("Llama7B-dolly", 2048),
        ("Llama13B-dolly", 2048),
    ] {
        let d = 64usize;
        let mut rng = StdRng::seed_from_u64(SEED ^ s as u64);
        let kdata: Vec<i32> = (0..s * d)
            .map(|_| {
                let u1: f32 = rng.gen_range(1e-6f32..1.0);
                let u2: f32 = rng.gen::<f32>();
                let g = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos();
                ((g * 38.0) as i32).clamp(-127, 127)
            })
            .collect();
        let keys = IntMatrix::from_flat(8, s, d, kdata).expect("keys fit");
        let planes = BitPlanes::from_matrix(&keys);
        let q: Vec<i32> = (0..d).map(|i| ((i as i32 * 7) % 15) - 7).collect();

        let k = ((s as f64) * keep_target) as usize;
        let oracle = exact_top_k(&q, &keys, k);
        let dense_bits = (s * d * 16) as u64; // full K + V for every key

        // Vanilla value-level top-k: 4-bit copy (plus signs) of all keys,
        // then kept keys' full K and V.
        let value = ValueTopK::new(4, k).predict(&q, &planes);
        let value_bits = value.k_bits_fetched + (k * d * 16) as u64;

        // BGPP at the same operating point: bisect alpha to keep ~ target.
        let mut lo = 0.0f32;
        let mut hi = 4.0f32;
        for _ in 0..20 {
            let mid = 0.5 * (lo + hi);
            let p = ProgressivePredictor::new(BgppConfig {
                alpha: vec![mid],
                ..BgppConfig::standard()
            });
            if p.predict(&q, &planes, 0.002).survivors.len() < k {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let predictor = ProgressivePredictor::new(BgppConfig {
            alpha: vec![hi],
            ..BgppConfig::standard()
        });
        let bg = predictor.predict(&q, &planes, 0.002);
        // Remaining K bits of survivors (8 - signs - 4 rounds = 3) + V.
        let bg_bits = bg.stats.k_bits_fetched + (bg.survivors.len() * d * (3 + 8)) as u64;
        let oracle_bits = (k * d * 16) as u64;
        let recall = recall_against(&bg.survivors, &oracle);
        rows.push(vec![
            name.to_owned(),
            f2(dense_bits as f64 / value_bits as f64),
            f2(dense_bits as f64 / bg_bits as f64),
            f2(dense_bits as f64 / oracle_bits as f64),
            pct(recall),
        ]);
    }
    out.push('\n');
    out.push_str(&render_table(
        "Fig 5(g) - KV access reduction vs dense, matched keep fraction (higher is better)",
        &[
            "scenario",
            "vanilla top-k",
            "BGPP (ours)",
            "oracle",
            "BGPP top-k recall",
        ],
        &rows,
    ));
    out
}

/// Fig 8(b): BSTC compression-ratio curves CR(m, SR).
#[must_use]
pub fn fig8b() -> String {
    let mut rows = Vec::new();
    for m in 1..=10usize {
        let mut row = vec![m.to_string()];
        for sr in [0.65, 0.75, 0.85, 0.90, 0.95] {
            row.push(f2(analytics::expected_cr(m, sr)));
        }
        rows.push(row);
    }
    let mut out = render_table(
        "Fig 8(b) - two-state coding compression ratio vs group size",
        &["m", "SR=0.65", "SR=0.75", "SR=0.85", "SR=0.90", "SR=0.95"],
        &rows,
    );
    out.push_str(&format!(
        "break-even sparsity at m=4: {} (paper: ~65%)\n",
        pct(analytics::break_even_sparsity(4))
    ));
    out
}

/// Fig 8(c): per-bit-position sparsity ratio in SM format.
#[must_use]
pub fn fig8c() -> String {
    let mut rows = Vec::new();
    for model in [LlmConfig::llama7b(), LlmConfig::qwen7b()] {
        let gen = WeightGenerator::for_model(&model);
        let w = gen.quantized_sample(96, 1024, SEED);
        let p = SparsityProfile::measure(&w, 4);
        let mut row = vec![model.name.to_owned()];
        // Paper order: 1st BS (LSB) .. 7th BS (highest magnitude).
        for plane in &p.planes {
            row.push(pct(plane.sparsity));
        }
        rows.push(row);
    }
    let mut out = render_table(
        "Fig 8(c) - sparsity ratio per bit-slice position (SM format)",
        &["model", "1st", "2nd", "3rd", "4th", "5th", "6th", "7th"],
        &rows,
    );
    out.push_str(
        "two-state coding gain > 1 for positions 3rd-7th (compressed); 1st/2nd/sign raw\n",
    );
    out
}

/// Fig 18: design-space exploration over group size m — computation
/// reduction (min/max over the sparsity band) and compression ratio.
#[must_use]
pub fn fig18() -> String {
    let points = cost::dse_over_m(8, 4096, 9, 0.65, 0.95);
    let mut rows = Vec::new();
    for p in &points {
        let cr = analytics::expected_cr(p.m, 0.85);
        rows.push(vec![p.m.to_string(), f2(p.cpr_min), f2(p.cpr_max), f2(cr)]);
    }
    let best = cost::optimal_m(&points).unwrap_or(4);
    let mut out = render_table(
        "Fig 18 - group-size DSE (paper cost model, H=4096, k=8)",
        &[
            "m",
            "comp reduction (min)",
            "comp reduction (max)",
            "compression ratio",
        ],
        &rows,
    );
    out.push_str(&format!(
        "CPR optimum at m={best}; CR optimum at m={}; selected m=4 (common divisor of hidden dims)\n",
        analytics::optimal_group_size(9, 0.85)
    ));
    out
}

/// Table 2: fidelity proxy across model scales — FP32 vs INT8 vs
/// MCBP-standard vs MCBP-aggressive (see DESIGN.md substitution 4).
#[must_use]
pub fn tab2() -> String {
    let mut rows = Vec::new();
    // One tiny functional transformer per named model (seeded per name);
    // metrics are relative to that model's own FP32 logits.
    for (name, seed) in [
        ("Llama7B", 1u64),
        ("Llama13B", 2),
        ("OPT1B3", 3),
        ("Bloom1B7", 4),
        ("Qwen7B", 5),
    ] {
        let cfg = TransformerConfig::tiny();
        let model = Transformer::random(cfg, seed);
        let tokens: Vec<usize> = (0..32)
            .map(|i| (i * 17 + seed as usize) % cfg.vocab)
            .collect();
        let fp = model.forward_f32(&tokens);
        let quant = QuantTransformer::quantize(&model, &tokens, 8, Calibration::MinMax);
        let (int8, _) = quant.forward(&tokens, &KeepAll);
        let (std_l, std_s) = quant_with_alpha(&quant, &tokens, 0.55);
        let (agg_l, agg_s) = quant_with_alpha(&quant, &tokens, 0.45);
        rows.push(vec![
            name.to_owned(),
            pct(fidelity::top1_agreement(&fp, &int8)),
            pct(fidelity::top1_agreement(&fp, &std_l)),
            pct(fidelity::top1_agreement(&fp, &agg_l)),
            pct(std_s),
            pct(agg_s),
            format!("{:.4}", fidelity::mean_kl_divergence(&fp, &std_l)),
        ]);
    }
    let mut out = render_table(
        "Table 2 (proxy) - output fidelity vs FP32 reference (top-1 agreement)",
        &[
            "model",
            "INT8",
            "MCBP(S)",
            "MCBP(A)",
            "sparsity(S)",
            "sparsity(A)",
            "KL(S)",
        ],
        &rows,
    );
    out.push_str(
        "structure reproduced: INT8 ~ FP32, MCBP(S) ~ INT8, MCBP(A) trades bounded fidelity for sparsity\n",
    );
    out
}

fn quant_with_alpha(
    quant: &QuantTransformer,
    tokens: &[usize],
    alpha: f32,
) -> (mcbp_quant::FloatMatrix, f64) {
    let pruner = mcbp::BgppPruner::with_alpha(alpha);
    let (logits, stats) = quant.forward(tokens, &pruner);
    (logits, stats.sparsity())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1a_shows_weight_domination_at_short_prompts() {
        let t = fig1a();
        assert!(t.contains("1k"));
        assert!(t.contains("128k"));
    }

    #[test]
    fn fig4_reproduces_paper_counts() {
        let t = fig4();
        assert!(t.contains("naive 9 adds"), "{t}");
        assert!(t.contains("merge 2"), "{t}");
        assert!(t.contains("reconstruct 4"), "{t}");
    }

    #[test]
    fn fig8c_has_seven_positions() {
        let t = fig8c();
        assert!(t.contains("7th"));
    }
}
