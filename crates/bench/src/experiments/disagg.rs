//! Disaggregated prefill/decode serving at equal silicon: the same
//! bursty mixed interactive/batch trace served once by four `Unified`
//! devices and once by a 2-prefill + 2-decode split of the *same* four
//! devices, with each request's KV handed off over the modeled host
//! link after its first token. Long batch-class prompts monopolize
//! unified devices' invocations — every queued interactive prompt's
//! first token shares step budget with somebody's 2k-token prefill and
//! with the resident decode streams, and every decode stream stalls
//! while its device chunks through a prompt. The split fleet removes
//! both contentions at once: prefill devices chunk prompts back-to-back
//! and emit each request's first token (the DistServe cut — TTFT never
//! waits on a second admission), decode devices run pure token steps.
//! The experiment asserts the interactive p95 TTFT improvement **and**
//! equal-or-better batch-class p95 TPOT, verifies every transferred
//! byte was conserved, and replay-checks the recorded disaggregated
//! trace through the binary format.

use mcbp::prelude::*;
use mcbp::serve::{ArrivalProcess, DispatchPolicy, LoadGenerator, RequestClass, Workload};
use mcbp::trace::{from_bytes, to_bytes, verify_replay};

use super::serving::{class_p95_tpot, interactive_p95_ttft};
use crate::{f2, render_table, SEED, STANDARD_KEEP};

/// Devices on each side of the comparison (equal silicon).
const DEVICES: usize = 4;

/// Devices of the split fleet dedicated to the prefill pool; the rest
/// decode. Long batch-class prompts make prefill roughly half the work,
/// so the split is even.
const PREFILL_DEVICES: usize = 2;

/// Host-link bandwidth for the KV handoffs, in bytes per core cycle:
/// 64 B/cycle ≈ 64 GB/s at the 1 GHz core clock — a datacenter-class
/// interconnect, far above the swap link's default 0.5 B/cycle edge DMA.
const HANDOFF_LINK: f64 = 64.0;

/// Bursty mixed trace: short interactive chats interleaved with
/// long-prompt batch jobs. The equal-length task and class mixes keep
/// the pairing fixed — slot 0 is always the 256-token interactive chat,
/// slots 1–2 the 2k-token batch documents — so on a unified fleet every
/// interactive first token shares its step budget with somebody's
/// 2k-token chunked prefill and the resident document decode streams,
/// while a split fleet's prefill pool chews documents back-to-back
/// (emitting each request's first token before handing off) and its
/// decode pool runs pure token steps.
fn bursty_mixed(count: usize, seed: u64) -> Workload {
    LoadGenerator {
        task_mix: vec![
            Task::cola().with_decode(16),      // 256-token prompt chat
            Task::wikitext2().with_decode(64), // 2048-token prompt doc
            Task::wikitext2().with_decode(64), // 2048-token prompt doc
        ],
        class_mix: vec![
            RequestClass::interactive(0.5, 0.05),
            RequestClass::batch(),
            RequestClass::batch(),
        ],
        prefix_mix: vec![None],
        count,
        process: ArrivalProcess::Bursty {
            rate_rps: 12.0,
            burst_factor: 6.0,
            burst_len: 6,
            seed,
        },
    }
    .generate()
}

fn mk() -> impl FnMut() -> Box<dyn mcbp::serve::Scheduler> {
    || Box::new(PriorityScheduler::new()) as Box<dyn mcbp::serve::Scheduler>
}

/// Disaggregated vs unified serving at equal silicon, replay-checked.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn serving_disagg() -> String {
    let model = LlmConfig::opt1b3();
    let engine = Engine::new(model.clone(), SEED);
    let load = bursty_mixed(96, 13);
    // Two documents' worth of KV per device: tight enough that bursts
    // exercise admission control, loose enough that nothing starves.
    let budget = model.kv_cache_bytes(Task::wikitext2().with_decode(64).final_context(), 1) * 2;
    let sim = engine.serve_sim(
        STANDARD_KEEP,
        ServeConfig {
            prefill_chunk: Some(128),
            step_token_budget: Some(128),
            kv_budget_bytes: Some(budget),
            ..ServeConfig::default()
        },
    );
    let policy = DispatchPolicy::JoinShortestQueue;

    let unified_fleet = vec![DeviceProfile::uniform(); DEVICES];
    let disagg_fleet: Vec<DeviceProfile> = (0..DEVICES)
        .map(|i| {
            let role = if i < PREFILL_DEVICES {
                DeviceRole::Prefill
            } else {
                DeviceRole::Decode
            };
            DeviceProfile::uniform()
                .with_role(role)
                .with_host_link(HANDOFF_LINK)
        })
        .collect();

    let unified = sim.run_fleet_profiles(&load, &unified_fleet, policy, &mut mk());
    let (disagg, trace) = sim.run_fleet_profiles_traced(&load, &disagg_fleet, policy, &mut mk());

    // Both arms served the whole trace.
    assert_eq!(unified.completed + unified.dropped, load.requests.len());
    assert_eq!(disagg.completed + disagg.dropped, load.requests.len());
    assert_eq!(disagg.completed, unified.completed, "equal work served");

    // The headline claim: splitting the same four devices improves
    // interactive p95 TTFT without costing batch-class p95 TPOT.
    let uni_ttft = interactive_p95_ttft(&unified);
    let dis_ttft = interactive_p95_ttft(&disagg);
    assert!(
        dis_ttft < uni_ttft,
        "disaggregation must cut interactive p95 TTFT at equal silicon: {dis_ttft} vs {uni_ttft}"
    );
    let uni_tpot = class_p95_tpot(&unified, Priority::Batch);
    let dis_tpot = class_p95_tpot(&disagg, Priority::Batch);
    assert!(
        dis_tpot <= uni_tpot,
        "the TTFT win must not cost batch p95 TPOT: {dis_tpot} vs {uni_tpot}"
    );

    // Handoff accounting: the unified arm never touches the link; the
    // split arm moved every decode-carrying survivor across it exactly
    // once, and every byte that left a prefill pool landed.
    assert!(!unified.handoff.any());
    let h = &disagg.handoff;
    assert!(h.handoffs_out > 0, "the split fleet actually hands off");
    assert_eq!(h.handoffs_out, h.handoffs_in);
    assert_eq!(h.bytes_out, h.bytes_in, "handoff bytes conserved");
    assert_eq!(h.handoffs_out, trace.handoff_count());
    assert!(h.link_seconds > 0.0);

    // Replay check: the recorded disaggregated run survives the binary
    // format and re-runs to the bit-exact report.
    let restored = from_bytes(&to_bytes(&trace).expect("serialize")).expect("deserialize");
    assert_eq!(trace, restored, "handoff trace round-trips bit-exactly");
    let replayed = verify_replay(&restored, &disagg, |w| {
        sim.run_fleet_profiles(w, &disagg_fleet, policy, &mut mk())
    })
    .unwrap_or_else(|m| panic!("disaggregated replay diverged: {m}"));
    assert_eq!(replayed, disagg);

    let mut rows = Vec::new();
    for (label, r) in [("unified 4x", &unified), ("split 2p+2d", &disagg)] {
        rows.push(vec![
            label.to_owned(),
            format!("{:.1}", interactive_p95_ttft(r) * 1e3),
            format!("{:.1}", class_p95_tpot(r, Priority::Batch) * 1e3),
            f2(r.goodput_tokens_per_s),
            format!("{}", r.handoff.handoffs_out),
            format!("{:.1}", r.handoff.bytes_out as f64 / (1024.0 * 1024.0)),
            format!("{:.3}", r.duration_seconds),
        ]);
    }
    let mut out = render_table(
        &format!(
            "Disaggregated prefill/decode at equal silicon: {DEVICES} devices, 96-request \
             bursty mixed trace, KV handoff at {HANDOFF_LINK:.0} B/cycle (OPT-1.3B, keep \
             {STANDARD_KEEP}; TTFT win at equal-or-better batch TPOT asserted, replay-checked)"
        ),
        &[
            "fleet",
            "inter p95 ttft ms",
            "batch p95 tpot ms",
            "tok/s",
            "handoffs",
            "MiB moved",
            "span s",
        ],
        &rows,
    );
    out.push_str(&format!(
        "\ninteractive p95 TTFT {:.1} ms -> {:.1} ms ({:.2}x) at batch p95 TPOT {:.1} ms -> \
         {:.1} ms; {} handoffs moved {:.1} MiB over the link ({:.3} s link time)\n",
        uni_ttft * 1e3,
        dis_ttft * 1e3,
        uni_ttft / dis_ttft,
        uni_tpot * 1e3,
        dis_tpot * 1e3,
        h.handoffs_out,
        h.bytes_out as f64 / (1024.0 * 1024.0),
        h.link_seconds,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The experiment's asserts are the acceptance criteria; running it
    /// end-to-end is the test.
    #[test]
    fn serving_disagg_wins_ttft_at_equal_silicon() {
        let out = serving_disagg();
        assert!(out.contains("replay-checked"));
        assert!(out.contains("handoffs moved"));
    }
}
