//! Output-fidelity metrics for the accuracy-proxy experiments
//! (Table 2 and Fig 24(a); see DESIGN.md, substitution 4).
//!
//! Absolute task accuracy requires real checkpoints; what is reproducible
//! here is the *relative* degradation structure: FP32 → INT8 is nearly
//! free, BGPP-standard stays near INT8, BGPP-aggressive trades bounded
//! fidelity for attention sparsity. These metrics quantify that on logit
//! matrices from the functional transformer.

use mcbp_quant::FloatMatrix;

use crate::ops::softmax_in_place;

/// Fraction of rows whose argmax token agrees between two logit matrices
/// (a proxy for classification/greedy-decoding accuracy).
///
/// # Panics
///
/// Panics if the shapes differ or the matrices are empty.
#[must_use]
pub fn top1_agreement(reference: &FloatMatrix, other: &FloatMatrix) -> f64 {
    assert_eq!(
        (reference.rows(), reference.cols()),
        (other.rows(), other.cols()),
        "logit shapes must match"
    );
    assert!(reference.rows() > 0, "need at least one row");
    let mut hits = 0usize;
    for r in 0..reference.rows() {
        if argmax(reference.row(r)) == argmax(other.row(r)) {
            hits += 1;
        }
    }
    hits as f64 / reference.rows() as f64
}

/// Mean KL divergence `KL(softmax(reference) ‖ softmax(other))` across rows
/// (a proxy for perplexity degradation).
///
/// # Panics
///
/// Panics if the shapes differ or the matrices are empty.
#[must_use]
pub fn mean_kl_divergence(reference: &FloatMatrix, other: &FloatMatrix) -> f64 {
    assert_eq!(
        (reference.rows(), reference.cols()),
        (other.rows(), other.cols()),
        "logit shapes must match"
    );
    assert!(reference.rows() > 0, "need at least one row");
    let mut total = 0.0f64;
    for r in 0..reference.rows() {
        let mut p = reference.row(r).to_vec();
        let mut q = other.row(r).to_vec();
        softmax_in_place(&mut p);
        softmax_in_place(&mut q);
        let mut kl = 0.0f64;
        for (&pi, &qi) in p.iter().zip(&q) {
            if pi > 1e-12 {
                kl += f64::from(pi) * (f64::from(pi) / f64::from(qi.max(1e-12))).ln();
            }
        }
        total += kl;
    }
    total / reference.rows() as f64
}

/// Mean relative L2 error `‖a − b‖ / ‖a‖` across rows.
///
/// # Panics
///
/// Panics if the shapes differ or the matrices are empty.
#[must_use]
pub fn mean_relative_error(reference: &FloatMatrix, other: &FloatMatrix) -> f64 {
    assert_eq!(
        (reference.rows(), reference.cols()),
        (other.rows(), other.cols()),
        "logit shapes must match"
    );
    assert!(reference.rows() > 0, "need at least one row");
    let mut total = 0.0f64;
    for r in 0..reference.rows() {
        let mut num = 0.0f64;
        let mut den = 0.0f64;
        for (&a, &b) in reference.row(r).iter().zip(other.row(r)) {
            num += f64::from(a - b) * f64::from(a - b);
            den += f64::from(a) * f64::from(a);
        }
        total += (num / den.max(1e-12)).sqrt();
    }
    total / reference.rows() as f64
}

fn argmax(xs: &[f32]) -> usize {
    xs.iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite logits"))
        .map(|(i, _)| i)
        .expect("non-empty row")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_matrices_are_perfect() {
        let m = FloatMatrix::from_rows(&[[1.0f32, 2.0, 0.5], [0.1, -0.2, 3.0]]);
        assert_eq!(top1_agreement(&m, &m), 1.0);
        assert!(mean_kl_divergence(&m, &m) < 1e-9);
        assert!(mean_relative_error(&m, &m) < 1e-9);
    }

    #[test]
    fn swapped_argmax_detected() {
        let a = FloatMatrix::from_rows(&[[1.0f32, 0.0]]);
        let b = FloatMatrix::from_rows(&[[0.0f32, 1.0]]);
        assert_eq!(top1_agreement(&a, &b), 0.0);
        assert!(mean_kl_divergence(&a, &b) > 0.1);
    }

    #[test]
    fn small_noise_keeps_agreement() {
        let a = FloatMatrix::from_rows(&[[5.0f32, 1.0, 0.0], [0.0, 4.0, 1.0]]);
        let b = FloatMatrix::from_rows(&[[5.01f32, 1.02, -0.01], [0.02, 3.99, 1.01]]);
        assert_eq!(top1_agreement(&a, &b), 1.0);
        assert!(mean_kl_divergence(&a, &b) < 0.01);
        assert!(mean_relative_error(&a, &b) < 0.02);
    }

    #[test]
    fn kl_is_asymmetric_but_nonnegative() {
        let a = FloatMatrix::from_rows(&[[2.0f32, 0.0, 0.0]]);
        let b = FloatMatrix::from_rows(&[[0.5f32, 0.5, 0.0]]);
        assert!(mean_kl_divergence(&a, &b) >= 0.0);
        assert!(mean_kl_divergence(&b, &a) >= 0.0);
    }

    #[test]
    #[should_panic(expected = "shapes must match")]
    fn shape_mismatch_panics() {
        let a = FloatMatrix::from_rows(&[[1.0f32, 2.0]]);
        let b = FloatMatrix::from_rows(&[[1.0f32, 2.0, 3.0]]);
        let _ = top1_agreement(&a, &b);
    }
}
