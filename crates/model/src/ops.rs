//! Non-linear operators of the transformer (computed in FP16 by the APU's
//! special function unit in hardware, §4.1; FP32 here).

/// In-place numerically stable softmax.
///
/// An empty slice is left untouched.
pub fn softmax_in_place(xs: &mut [f32]) {
    if xs.is_empty() {
        return;
    }
    let max = xs.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0f32;
    for x in xs.iter_mut() {
        *x = (*x - max).exp();
        sum += *x;
    }
    if sum > 0.0 {
        for x in xs.iter_mut() {
            *x /= sum;
        }
    }
}

/// GELU activation (tanh approximation, as used by GPT-family FFNs).
#[must_use]
pub fn gelu(x: f32) -> f32 {
    const SQRT_2_OVER_PI: f32 = 0.797_884_6;
    0.5 * x * (1.0 + (SQRT_2_OVER_PI * (x + 0.044_715 * x * x * x)).tanh())
}

/// LayerNorm with learned gain/bias.
///
/// # Panics
///
/// Panics if `gain`/`bias` lengths differ from `xs`.
#[must_use]
pub fn layer_norm(xs: &[f32], gain: &[f32], bias: &[f32], eps: f32) -> Vec<f32> {
    assert_eq!(xs.len(), gain.len(), "gain length mismatch");
    assert_eq!(xs.len(), bias.len(), "bias length mismatch");
    let n = xs.len() as f32;
    let mean = xs.iter().sum::<f32>() / n;
    let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / n;
    let denom = (var + eps).sqrt();
    xs.iter()
        .zip(gain.iter().zip(bias))
        .map(|(x, (g, b))| (x - mean) / denom * g + b)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_sums_to_one_and_orders() {
        let mut xs = [1.0f32, 3.0, 2.0];
        softmax_in_place(&mut xs);
        assert!((xs.iter().sum::<f32>() - 1.0).abs() < 1e-6);
        assert!(xs[1] > xs[2] && xs[2] > xs[0]);
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let mut a = [1000.0f32, 1001.0];
        let mut b = [0.0f32, 1.0];
        softmax_in_place(&mut a);
        softmax_in_place(&mut b);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_radius_motivation() {
        // §3.3: inputs trailing the max by more than the radius (3) are
        // near zero after softmax — the property BGPP exploits.
        let mut xs = [0.0f32, -3.5, -10.0];
        softmax_in_place(&mut xs);
        assert!(xs[1] < 0.04);
        assert!(xs[2] < 1e-4);
    }

    #[test]
    fn gelu_fixed_points() {
        assert_eq!(gelu(0.0), 0.0);
        assert!((gelu(1.0) - 0.8412).abs() < 1e-3);
        assert!(gelu(-10.0).abs() < 1e-3);
    }

    #[test]
    fn layer_norm_standardizes() {
        let xs = [1.0f32, 2.0, 3.0, 4.0];
        let gain = [1.0f32; 4];
        let bias = [0.0f32; 4];
        let y = layer_norm(&xs, &gain, &bias, 1e-5);
        let mean: f32 = y.iter().sum::<f32>() / 4.0;
        let var: f32 = y.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 4.0;
        assert!(mean.abs() < 1e-5);
        assert!((var - 1.0).abs() < 1e-3);
    }
}
