use mcbp_quant::FloatMatrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::ops::{gelu, layer_norm, softmax_in_place};

/// Shape of the functional reference transformer.
///
/// Deliberately small enough to execute in tests while exercising every
/// architectural component the paper touches (QKV, causal MHA with a KV
/// cache, FFN, LayerNorm, logits).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransformerConfig {
    /// Hidden dimension.
    pub hidden: usize,
    /// Decoder layers.
    pub layers: usize,
    /// Attention heads (must divide `hidden`).
    pub heads: usize,
    /// FFN intermediate dimension.
    pub ffn: usize,
    /// Vocabulary size.
    pub vocab: usize,
}

impl TransformerConfig {
    /// A small default used throughout the fidelity experiments.
    #[must_use]
    pub fn tiny() -> Self {
        TransformerConfig {
            hidden: 64,
            layers: 2,
            heads: 4,
            ffn: 128,
            vocab: 97,
        }
    }

    /// Per-head dimension.
    ///
    /// # Panics
    ///
    /// Panics if `heads` does not divide `hidden`.
    #[must_use]
    pub fn head_dim(&self) -> usize {
        assert_eq!(self.hidden % self.heads, 0, "heads must divide hidden");
        self.hidden / self.heads
    }
}

/// One decoder layer's weights (all matrices are `out × in`).
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct LayerWeights {
    pub ln1_gain: Vec<f32>,
    pub ln1_bias: Vec<f32>,
    pub wq: FloatMatrix,
    pub wk: FloatMatrix,
    pub wv: FloatMatrix,
    pub wo: FloatMatrix,
    pub ln2_gain: Vec<f32>,
    pub ln2_bias: Vec<f32>,
    pub w_up: FloatMatrix,
    pub w_down: FloatMatrix,
}

/// A functional decoder-only transformer with FP32 weights.
///
/// # Example
///
/// ```
/// use mcbp_model::{Transformer, TransformerConfig};
///
/// let model = Transformer::random(TransformerConfig::tiny(), 42);
/// let logits = model.forward_f32(&[1, 2, 3]);
/// assert_eq!(logits.rows(), 3);
/// assert_eq!(logits.cols(), 97);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Transformer {
    cfg: TransformerConfig,
    pub(crate) embed: FloatMatrix, // vocab × hidden
    pub(crate) layers: Vec<LayerWeights>,
    pub(crate) final_gain: Vec<f32>,
    pub(crate) final_bias: Vec<f32>,
    pub(crate) lm_head: FloatMatrix, // vocab × hidden
}

fn gaussian(rng: &mut StdRng, std: f32) -> f32 {
    // Box–Muller; avoids pulling in a distributions dependency.
    let u1: f32 = rng.gen_range(1e-7f32..1.0);
    let u2: f32 = rng.gen::<f32>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos() * std
}

fn random_matrix(rng: &mut StdRng, rows: usize, cols: usize, std: f32) -> FloatMatrix {
    let data: Vec<f32> = (0..rows * cols).map(|_| gaussian(rng, std)).collect();
    FloatMatrix::from_flat(rows, cols, data)
}

impl Transformer {
    /// Builds a model with Gaussian-initialized weights (std `0.7/√hidden`,
    /// the near-Gaussian regime the paper's sparsity analysis assumes,
    /// §3.2).
    ///
    /// # Panics
    ///
    /// Panics if `heads` does not divide `hidden`.
    #[must_use]
    pub fn random(cfg: TransformerConfig, seed: u64) -> Self {
        let _ = cfg.head_dim(); // validate
        let mut rng = StdRng::seed_from_u64(seed);
        let std = 0.7 / (cfg.hidden as f32).sqrt();
        // Trained LLMs have *peaked* attention (few keys dominate each
        // query); random Q/K at init-scale would be diffuse and unprunable.
        // Boosting Q/K variance reproduces the concentration that makes
        // top-k pruning viable — the premise of §2.2.
        let qk_std = std * 1.4;
        let layers = (0..cfg.layers)
            .map(|_| LayerWeights {
                ln1_gain: vec![1.0; cfg.hidden],
                ln1_bias: vec![0.0; cfg.hidden],
                wq: random_matrix(&mut rng, cfg.hidden, cfg.hidden, qk_std),
                wk: random_matrix(&mut rng, cfg.hidden, cfg.hidden, qk_std),
                wv: random_matrix(&mut rng, cfg.hidden, cfg.hidden, std),
                wo: random_matrix(&mut rng, cfg.hidden, cfg.hidden, std),
                ln2_gain: vec![1.0; cfg.hidden],
                ln2_bias: vec![0.0; cfg.hidden],
                w_up: random_matrix(&mut rng, cfg.ffn, cfg.hidden, std),
                w_down: random_matrix(&mut rng, cfg.hidden, cfg.ffn, std),
            })
            .collect();
        Transformer {
            cfg,
            embed: random_matrix(&mut rng, cfg.vocab, cfg.hidden, 0.5),
            layers,
            final_gain: vec![1.0; cfg.hidden],
            final_bias: vec![0.0; cfg.hidden],
            lm_head: random_matrix(&mut rng, cfg.vocab, cfg.hidden, std),
        }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &TransformerConfig {
        &self.cfg
    }

    /// Full-precision forward pass over a token sequence, returning the
    /// `S × vocab` logit matrix (causal attention over all prefix keys).
    ///
    /// # Panics
    ///
    /// Panics if any token id is out of vocabulary or `tokens` is empty.
    #[must_use]
    pub fn forward_f32(&self, tokens: &[usize]) -> FloatMatrix {
        assert!(!tokens.is_empty(), "need at least one token");
        let h = self.cfg.hidden;
        let s = tokens.len();
        // S × H activations.
        let mut x = FloatMatrix::zeros(s, h);
        for (t, &tok) in tokens.iter().enumerate() {
            assert!(tok < self.cfg.vocab, "token {tok} out of vocabulary");
            x.row_mut(t).copy_from_slice(self.embed.row(tok));
        }

        for layer in &self.layers {
            x = self.attention_block(&x, layer);
            x = self.ffn_block(&x, layer);
        }

        let mut logits = FloatMatrix::zeros(s, self.cfg.vocab);
        for t in 0..s {
            let normed = layer_norm(x.row(t), &self.final_gain, &self.final_bias, 1e-5);
            let row = self.lm_head.matvec(&normed);
            logits.row_mut(t).copy_from_slice(&row);
        }
        logits
    }

    fn attention_block(&self, x: &FloatMatrix, layer: &LayerWeights) -> FloatMatrix {
        let s = x.rows();
        let h = self.cfg.hidden;
        let d = self.cfg.head_dim();
        let scale = 1.0 / (d as f32).sqrt();

        let mut q = FloatMatrix::zeros(s, h);
        let mut k = FloatMatrix::zeros(s, h);
        let mut v = FloatMatrix::zeros(s, h);
        for t in 0..s {
            let normed = layer_norm(x.row(t), &layer.ln1_gain, &layer.ln1_bias, 1e-5);
            q.row_mut(t).copy_from_slice(&layer.wq.matvec(&normed));
            k.row_mut(t).copy_from_slice(&layer.wk.matvec(&normed));
            v.row_mut(t).copy_from_slice(&layer.wv.matvec(&normed));
        }

        let mut ctx = FloatMatrix::zeros(s, h);
        for head in 0..self.cfg.heads {
            let off = head * d;
            for t in 0..s {
                let qrow = &q.row(t)[off..off + d];
                let mut scores: Vec<f32> = (0..=t)
                    .map(|u| {
                        let krow = &k.row(u)[off..off + d];
                        qrow.iter().zip(krow).map(|(a, b)| a * b).sum::<f32>() * scale
                    })
                    .collect();
                softmax_in_place(&mut scores);
                let out = &mut ctx.row_mut(t)[off..off + d];
                for (u, &p) in scores.iter().enumerate() {
                    let vrow = &v.row(u)[off..off + d];
                    for (o, &vv) in out.iter_mut().zip(vrow) {
                        *o += p * vv;
                    }
                }
            }
        }

        // Output projection + residual.
        let mut out = FloatMatrix::zeros(s, h);
        for t in 0..s {
            let proj = layer.wo.matvec(ctx.row(t));
            for (o, (&xv, &pv)) in out.row_mut(t).iter_mut().zip(x.row(t).iter().zip(&proj)) {
                *o = xv + pv;
            }
        }
        out
    }

    fn ffn_block(&self, x: &FloatMatrix, layer: &LayerWeights) -> FloatMatrix {
        let s = x.rows();
        let mut out = FloatMatrix::zeros(s, self.cfg.hidden);
        for t in 0..s {
            let normed = layer_norm(x.row(t), &layer.ln2_gain, &layer.ln2_bias, 1e-5);
            let mut up = layer.w_up.matvec(&normed);
            for u in &mut up {
                *u = gelu(*u);
            }
            let down = layer.w_down.matvec(&up);
            for (o, (&xv, &dv)) in out.row_mut(t).iter_mut().zip(x.row(t).iter().zip(&down)) {
                *o = xv + dv;
            }
        }
        out
    }

    /// Greedy next-token prediction from the last position's logits.
    ///
    /// # Panics
    ///
    /// Panics if `tokens` is empty.
    #[must_use]
    pub fn greedy_next(&self, tokens: &[usize]) -> usize {
        let logits = self.forward_f32(tokens);
        let last = logits.row(logits.rows() - 1);
        last.iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite logits"))
            .map(|(i, _)| i)
            .expect("non-empty vocabulary")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_shapes() {
        let m = Transformer::random(TransformerConfig::tiny(), 1);
        let logits = m.forward_f32(&[0, 5, 9, 2]);
        assert_eq!((logits.rows(), logits.cols()), (4, 97));
    }

    #[test]
    fn deterministic_given_seed() {
        let a = Transformer::random(TransformerConfig::tiny(), 7);
        let b = Transformer::random(TransformerConfig::tiny(), 7);
        assert_eq!(a.forward_f32(&[1, 2, 3]), b.forward_f32(&[1, 2, 3]));
    }

    #[test]
    fn causality_prefix_logits_stable() {
        // Adding a token must not change the logits of earlier positions.
        let m = Transformer::random(TransformerConfig::tiny(), 3);
        let short = m.forward_f32(&[4, 8, 15]);
        let long = m.forward_f32(&[4, 8, 15, 16]);
        for t in 0..3 {
            for c in 0..97 {
                assert!((short.get(t, c) - long.get(t, c)).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn greedy_next_in_vocab() {
        let m = Transformer::random(TransformerConfig::tiny(), 5);
        assert!(m.greedy_next(&[0, 1]) < 97);
    }

    #[test]
    #[should_panic(expected = "out of vocabulary")]
    fn oov_token_rejected() {
        let m = Transformer::random(TransformerConfig::tiny(), 5);
        let _ = m.forward_f32(&[1000]);
    }
}
