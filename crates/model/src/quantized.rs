use mcbp_bitslice::IntMatrix;
use mcbp_quant::{Calibration, FloatMatrix, PerTensorSymmetric, QuantizedLinear};

use crate::ops::{gelu, layer_norm, softmax_in_place};
use crate::transformer::Transformer;
use crate::TransformerConfig;

/// The decision of an attention pruner for one query position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrunerDecision {
    /// Indices (into the causal prefix) of keys kept for full attention.
    pub kept: Vec<usize>,
    /// Key bits fetched by the prediction pass itself.
    pub bits_fetched: u64,
}

/// Selects the vital keys for one query against its causal key prefix.
///
/// `keys` holds one key per row, already quantized to the symmetric INT8
/// domain (the form in which the "BL K cache" is stored, Fig 6);
/// `score_scale` converts one integer score unit to logit units. The MCBP
/// engine plugs BGPP in here; [`KeepAll`] is dense attention.
pub trait AttentionPruner {
    /// Returns the kept key indices and the prediction traffic.
    fn select(&self, q: &[i32], keys: &IntMatrix, score_scale: f32) -> PrunerDecision;
}

/// Dense attention: every key is vital, zero prediction traffic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KeepAll;

impl AttentionPruner for KeepAll {
    fn select(&self, _q: &[i32], keys: &IntMatrix, _score_scale: f32) -> PrunerDecision {
        PrunerDecision {
            kept: (0..keys.rows()).collect(),
            bits_fetched: 0,
        }
    }
}

/// Attention-sparsity measurements accumulated over a forward pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AttnStats {
    /// Total causal (query, key) pairs.
    pub keys_total: u64,
    /// Pairs kept after pruning.
    pub keys_kept: u64,
    /// Prediction traffic in key bits.
    pub prediction_bits: u64,
}

impl AttnStats {
    /// Measured attention sparsity (fraction of pairs pruned).
    #[must_use]
    pub fn sparsity(&self) -> f64 {
        if self.keys_total == 0 {
            return 0.0;
        }
        1.0 - self.keys_kept as f64 / self.keys_total as f64
    }
}

struct QuantLayer {
    ln1_gain: Vec<f32>,
    ln1_bias: Vec<f32>,
    wq: QuantizedLinear,
    wk: QuantizedLinear,
    wv: QuantizedLinear,
    wo: QuantizedLinear,
    ln2_gain: Vec<f32>,
    ln2_bias: Vec<f32>,
    w_up: QuantizedLinear,
    w_down: QuantizedLinear,
}

/// The INT8-quantized execution of a [`Transformer`] with an optional
/// attention pruner — the MCBP inference path of Fig 6 (weights
/// per-channel symmetric, activations per-tensor asymmetric, QK/PV in
/// INT8, softmax/LayerNorm in float as in the paper's SFU).
pub struct QuantTransformer {
    cfg: TransformerConfig,
    embed: FloatMatrix,
    layers: Vec<QuantLayer>,
    final_gain: Vec<f32>,
    final_bias: Vec<f32>,
    lm_head: QuantizedLinear,
    qk_bits: u8,
}

impl QuantTransformer {
    /// Quantizes a float model, calibrating activation ranges by running
    /// the float model over `calib_tokens`.
    ///
    /// # Panics
    ///
    /// Panics if `calib_tokens` is empty or contains out-of-vocabulary ids.
    #[must_use]
    pub fn quantize(
        model: &Transformer,
        calib_tokens: &[usize],
        bits: u8,
        cal: Calibration,
    ) -> Self {
        assert!(
            !calib_tokens.is_empty(),
            "calibration needs at least one token"
        );
        let cfg = *model.config();
        // A single float forward pass provides activation samples for every
        // linear's input domain; per-layer capture would be tighter but the
        // per-tensor ranges the paper uses are already per-op here.
        let probe = CalibrationProbe::run(model, calib_tokens);
        let layers = model
            .layers
            .iter()
            .zip(&probe.layer_inputs)
            .map(|(lw, cap)| QuantLayer {
                ln1_gain: lw.ln1_gain.clone(),
                ln1_bias: lw.ln1_bias.clone(),
                wq: QuantizedLinear::prepare(&lw.wq, &cap.normed1, bits, cal),
                wk: QuantizedLinear::prepare(&lw.wk, &cap.normed1, bits, cal),
                wv: QuantizedLinear::prepare(&lw.wv, &cap.normed1, bits, cal),
                wo: QuantizedLinear::prepare(&lw.wo, &cap.ctx, bits, cal),
                ln2_gain: lw.ln2_gain.clone(),
                ln2_bias: lw.ln2_bias.clone(),
                w_up: QuantizedLinear::prepare(&lw.w_up, &cap.normed2, bits, cal),
                w_down: QuantizedLinear::prepare(&lw.w_down, &cap.ffn_act, bits, cal),
            })
            .collect();
        QuantTransformer {
            cfg,
            embed: model.embed.clone(),
            layers,
            final_gain: model.final_gain.clone(),
            final_bias: model.final_bias.clone(),
            lm_head: QuantizedLinear::prepare(&model.lm_head, &probe.final_normed, bits, cal),
            qk_bits: 8,
        }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &TransformerConfig {
        &self.cfg
    }

    /// Integer weight matrices of every linear in execution order — the
    /// tensors MCBP compresses (BSTC) and computes on (BRCR).
    #[must_use]
    pub fn weight_matrices(&self) -> Vec<&IntMatrix> {
        let mut out = Vec::new();
        for l in &self.layers {
            out.extend([
                l.wq.weight_q(),
                l.wk.weight_q(),
                l.wv.weight_q(),
                l.wo.weight_q(),
                l.w_up.weight_q(),
                l.w_down.weight_q(),
            ]);
        }
        out.push(self.lm_head.weight_q());
        out
    }

    /// INT8 forward pass with the given pruner, returning logits and
    /// measured attention statistics.
    ///
    /// # Panics
    ///
    /// Panics if `tokens` is empty or out of vocabulary.
    #[must_use]
    pub fn forward(
        &self,
        tokens: &[usize],
        pruner: &dyn AttentionPruner,
    ) -> (FloatMatrix, AttnStats) {
        assert!(!tokens.is_empty(), "need at least one token");
        let h = self.cfg.hidden;
        let d = self.cfg.head_dim();
        let s = tokens.len();
        let scale = 1.0 / (d as f32).sqrt();
        let mut stats = AttnStats::default();

        let mut x = FloatMatrix::zeros(s, h);
        for (t, &tok) in tokens.iter().enumerate() {
            assert!(tok < self.cfg.vocab, "token {tok} out of vocabulary");
            x.row_mut(t).copy_from_slice(self.embed.row(tok));
        }

        for layer in &self.layers {
            // ---- attention block ----
            let mut q = FloatMatrix::zeros(s, h);
            let mut k = FloatMatrix::zeros(s, h);
            let mut v = FloatMatrix::zeros(s, h);
            for t in 0..s {
                let normed = layer_norm(x.row(t), &layer.ln1_gain, &layer.ln1_bias, 1e-5);
                q.row_mut(t).copy_from_slice(&layer.wq.forward_f32(&normed));
                k.row_mut(t).copy_from_slice(&layer.wk.forward_f32(&normed));
                v.row_mut(t).copy_from_slice(&layer.wv.forward_f32(&normed));
            }
            // Quantize Q/K to the symmetric INT domain for score compute
            // and prediction (the "BL K cache" form).
            let qq_scheme =
                PerTensorSymmetric::calibrate(q.as_flat(), self.qk_bits, Calibration::MinMax);
            let kq_scheme =
                PerTensorSymmetric::calibrate(k.as_flat(), self.qk_bits, Calibration::MinMax);
            let score_scale = qq_scheme.scale() * kq_scheme.scale() * scale;

            let mut ctx = FloatMatrix::zeros(s, h);
            for head in 0..self.cfg.heads {
                let off = head * d;
                for t in 0..s {
                    let q_int: Vec<i32> = q.row(t)[off..off + d]
                        .iter()
                        .map(|&qv| qq_scheme.quantize(qv))
                        .collect();
                    // Causal prefix of keys, quantized.
                    let mut kdata = Vec::with_capacity((t + 1) * d);
                    for u in 0..=t {
                        for &kv in &k.row(u)[off..off + d] {
                            kdata.push(kq_scheme.quantize(kv));
                        }
                    }
                    let keys = IntMatrix::from_flat(self.qk_bits, t + 1, d, kdata)
                        .expect("quantized keys fit");
                    let decision = pruner.select(&q_int, &keys, score_scale);
                    stats.keys_total += (t + 1) as u64;
                    stats.keys_kept += decision.kept.len() as u64;
                    stats.prediction_bits += decision.bits_fetched;

                    // Formal compute stage: INT8 scores on vital keys only.
                    let mut scores: Vec<f32> = decision
                        .kept
                        .iter()
                        .map(|&u| {
                            let acc: i64 = keys
                                .row(u)
                                .iter()
                                .zip(&q_int)
                                .map(|(&kv, &qv)| i64::from(kv) * i64::from(qv))
                                .sum();
                            acc as f32 * score_scale
                        })
                        .collect();
                    softmax_in_place(&mut scores);
                    let out = &mut ctx.row_mut(t)[off..off + d];
                    for (&u, &p) in decision.kept.iter().zip(&scores) {
                        let vrow = &v.row(u)[off..off + d];
                        for (o, &vv) in out.iter_mut().zip(vrow) {
                            *o += p * vv;
                        }
                    }
                }
            }
            for t in 0..s {
                let proj = layer.wo.forward_f32(ctx.row(t));
                for (o, &pv) in x.row_mut(t).iter_mut().zip(&proj) {
                    *o += pv;
                }
            }

            // ---- FFN block ----
            for t in 0..s {
                let normed = layer_norm(x.row(t), &layer.ln2_gain, &layer.ln2_bias, 1e-5);
                let mut up = layer.w_up.forward_f32(&normed);
                for u in &mut up {
                    *u = gelu(*u);
                }
                let down = layer.w_down.forward_f32(&up);
                for (o, &dv) in x.row_mut(t).iter_mut().zip(&down) {
                    *o += dv;
                }
            }
        }

        let mut logits = FloatMatrix::zeros(s, self.cfg.vocab);
        for t in 0..s {
            let normed = layer_norm(x.row(t), &self.final_gain, &self.final_bias, 1e-5);
            logits
                .row_mut(t)
                .copy_from_slice(&self.lm_head.forward_f32(&normed));
        }
        (logits, stats)
    }
}

/// Activation samples captured from a float forward pass, per layer.
struct LayerCapture {
    normed1: FloatMatrix,
    ctx: FloatMatrix,
    normed2: FloatMatrix,
    ffn_act: FloatMatrix,
}

struct CalibrationProbe {
    layer_inputs: Vec<LayerCapture>,
    final_normed: FloatMatrix,
}

impl CalibrationProbe {
    fn run(model: &Transformer, tokens: &[usize]) -> Self {
        // Re-implements the float forward pass, capturing each linear's
        // input. Duplication is confined to this probe and is cross-checked
        // against `Transformer::forward_f32` in tests.
        let cfg = *model.config();
        let h = cfg.hidden;
        let d = cfg.head_dim();
        let s = tokens.len();
        let scale = 1.0 / (d as f32).sqrt();
        let mut x = FloatMatrix::zeros(s, h);
        for (t, &tok) in tokens.iter().enumerate() {
            x.row_mut(t).copy_from_slice(model.embed.row(tok));
        }
        let mut layer_inputs = Vec::with_capacity(cfg.layers);
        for lw in &model.layers {
            let mut normed1 = FloatMatrix::zeros(s, h);
            let mut q = FloatMatrix::zeros(s, h);
            let mut k = FloatMatrix::zeros(s, h);
            let mut v = FloatMatrix::zeros(s, h);
            for t in 0..s {
                let n = layer_norm(x.row(t), &lw.ln1_gain, &lw.ln1_bias, 1e-5);
                normed1.row_mut(t).copy_from_slice(&n);
                q.row_mut(t).copy_from_slice(&lw.wq.matvec(&n));
                k.row_mut(t).copy_from_slice(&lw.wk.matvec(&n));
                v.row_mut(t).copy_from_slice(&lw.wv.matvec(&n));
            }
            let mut ctx = FloatMatrix::zeros(s, h);
            for head in 0..cfg.heads {
                let off = head * d;
                for t in 0..s {
                    let qrow = &q.row(t)[off..off + d];
                    let mut scores: Vec<f32> = (0..=t)
                        .map(|u| {
                            let krow = &k.row(u)[off..off + d];
                            qrow.iter().zip(krow).map(|(a, b)| a * b).sum::<f32>() * scale
                        })
                        .collect();
                    softmax_in_place(&mut scores);
                    let out = &mut ctx.row_mut(t)[off..off + d];
                    for (u, &p) in scores.iter().enumerate() {
                        let vrow = &v.row(u)[off..off + d];
                        for (o, &vv) in out.iter_mut().zip(vrow) {
                            *o += p * vv;
                        }
                    }
                }
            }
            for t in 0..s {
                let proj = lw.wo.matvec(ctx.row(t));
                for (o, &pv) in x.row_mut(t).iter_mut().zip(&proj) {
                    *o += pv;
                }
            }
            let mut normed2 = FloatMatrix::zeros(s, h);
            let mut ffn_act = FloatMatrix::zeros(s, cfg.ffn);
            for t in 0..s {
                let n = layer_norm(x.row(t), &lw.ln2_gain, &lw.ln2_bias, 1e-5);
                normed2.row_mut(t).copy_from_slice(&n);
                let mut up = lw.w_up.matvec(&n);
                for u in &mut up {
                    *u = gelu(*u);
                }
                ffn_act.row_mut(t).copy_from_slice(&up);
                let down = lw.w_down.matvec(&up);
                for (o, &dv) in x.row_mut(t).iter_mut().zip(&down) {
                    *o += dv;
                }
            }
            layer_inputs.push(LayerCapture {
                normed1,
                ctx,
                normed2,
                ffn_act,
            });
        }
        let mut final_normed = FloatMatrix::zeros(s, h);
        for t in 0..s {
            let n = layer_norm(x.row(t), &model.final_gain, &model.final_bias, 1e-5);
            final_normed.row_mut(t).copy_from_slice(&n);
        }
        CalibrationProbe {
            layer_inputs,
            final_normed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fidelity;

    fn setup() -> (Transformer, QuantTransformer, Vec<usize>) {
        let model = Transformer::random(TransformerConfig::tiny(), 11);
        let tokens: Vec<usize> = (0..24).map(|i| (i * 13 + 5) % 97).collect();
        let quant = QuantTransformer::quantize(&model, &tokens, 8, Calibration::MinMax);
        (model, quant, tokens)
    }

    #[test]
    fn int8_tracks_fp32_closely() {
        let (model, quant, tokens) = setup();
        let fp = model.forward_f32(&tokens);
        let (q8, stats) = quant.forward(&tokens, &KeepAll);
        assert_eq!(stats.sparsity(), 0.0);
        let agree = fidelity::top1_agreement(&fp, &q8);
        assert!(agree >= 0.85, "top-1 agreement {agree}");
        let kl = fidelity::mean_kl_divergence(&fp, &q8);
        assert!(kl < 0.1, "KL divergence {kl}");
    }

    #[test]
    fn weight_matrices_enumerated() {
        let (_, quant, _) = setup();
        // 2 layers x 6 linears + lm_head.
        assert_eq!(quant.weight_matrices().len(), 13);
        for w in quant.weight_matrices() {
            assert_eq!(w.bits(), 8);
        }
    }

    #[test]
    fn keepall_keeps_everything() {
        let keys = IntMatrix::from_flat(8, 5, 2, vec![1; 10]).unwrap();
        let d = KeepAll.select(&[1, 1], &keys, 1.0);
        assert_eq!(d.kept, vec![0, 1, 2, 3, 4]);
        assert_eq!(d.bits_fetched, 0);
    }

    /// A pruner that keeps only the exact top-1 key: fidelity must degrade
    /// but the pipeline must still run — the structural guarantee behind
    /// the Fig 24(a) sweep.
    struct Top1;
    impl AttentionPruner for Top1 {
        fn select(&self, q: &[i32], keys: &IntMatrix, _s: f32) -> PrunerDecision {
            let kept = mcbp_bgpp_free_top1(q, keys);
            PrunerDecision {
                kept,
                bits_fetched: (keys.rows() * keys.cols() * 8) as u64,
            }
        }
    }
    fn mcbp_bgpp_free_top1(q: &[i32], keys: &IntMatrix) -> Vec<usize> {
        let scores = keys.matvec(q).unwrap();
        let best = scores
            .iter()
            .enumerate()
            .max_by_key(|(i, s)| (**s, usize::MAX - *i))
            .map(|(i, _)| i)
            .unwrap();
        vec![best]
    }

    #[test]
    fn aggressive_pruning_increases_sparsity_and_hurts_fidelity() {
        let (_, quant, tokens) = setup();
        let (dense, s0) = quant.forward(&tokens, &KeepAll);
        let (pruned, s1) = quant.forward(&tokens, &Top1);
        assert!(s1.sparsity() > s0.sparsity());
        assert!(s1.sparsity() > 0.5);
        let agree_dense = fidelity::top1_agreement(&dense, &pruned);
        assert!(agree_dense < 1.0, "top-1 pruning must perturb some outputs");
    }
}
