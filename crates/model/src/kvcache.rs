//! KV-cached autoregressive generation for the reference transformer —
//! the decode phase whose memory traffic MCBP's BSTC/BGPP attack.
//!
//! [`Transformer::forward_f32`](crate::Transformer::forward_f32)
//! recomputes the whole prefix per call; [`Generator`] caches each layer's
//! K/V rows so one decode step touches only the new token's projections
//! plus the cached keys — exactly the access pattern (full weight stream +
//! growing KV stream per token) that Fig 1(a) profiles. Tests assert the
//! cached path is numerically identical to full recomputation.

use mcbp_quant::FloatMatrix;

use crate::ops::{gelu, layer_norm, softmax_in_place};
use crate::transformer::Transformer;

/// Per-layer K/V cache.
#[derive(Debug, Clone, Default)]
struct LayerCache {
    /// One row per cached token; `hidden` wide.
    k: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
}

/// Streaming KV-cached executor over a [`Transformer`].
#[derive(Debug, Clone)]
pub struct Generator<'a> {
    model: &'a Transformer,
    caches: Vec<LayerCache>,
    tokens_seen: usize,
}

impl<'a> Generator<'a> {
    /// Creates an empty-context generator.
    #[must_use]
    pub fn new(model: &'a Transformer) -> Self {
        let caches = (0..model.config().layers)
            .map(|_| LayerCache::default())
            .collect();
        Generator {
            model,
            caches,
            tokens_seen: 0,
        }
    }

    /// Tokens currently in the cache.
    #[must_use]
    pub fn context_len(&self) -> usize {
        self.tokens_seen
    }

    /// KV-cache footprint in bytes at FP32 (the quantity MCBP stores as
    /// bit-planes instead).
    #[must_use]
    pub fn kv_bytes(&self) -> usize {
        2 * self.caches.len() * self.tokens_seen * self.model.config().hidden * 4
    }

    /// Feeds one token, returning its logits. The cost is one token's
    /// projections plus attention over the cached prefix.
    ///
    /// # Panics
    ///
    /// Panics if `token` is out of vocabulary.
    pub fn feed(&mut self, token: usize) -> Vec<f32> {
        let cfg = *self.model.config();
        assert!(token < cfg.vocab, "token {token} out of vocabulary");
        let d = cfg.head_dim();
        let scale = 1.0 / (d as f32).sqrt();

        let mut x = self.model.embed.row(token).to_vec();
        for (layer, cache) in self.model.layers.iter().zip(&mut self.caches) {
            // Attention block with cached K/V.
            let normed = layer_norm(&x, &layer.ln1_gain, &layer.ln1_bias, 1e-5);
            let q = layer.wq.matvec(&normed);
            let k = layer.wk.matvec(&normed);
            let v = layer.wv.matvec(&normed);
            cache.k.push(k);
            cache.v.push(v);

            let mut ctx = vec![0.0f32; cfg.hidden];
            for head in 0..cfg.heads {
                let off = head * d;
                let qh = &q[off..off + d];
                let mut scores: Vec<f32> = cache
                    .k
                    .iter()
                    .map(|krow| {
                        qh.iter()
                            .zip(&krow[off..off + d])
                            .map(|(a, b)| a * b)
                            .sum::<f32>()
                            * scale
                    })
                    .collect();
                softmax_in_place(&mut scores);
                for (vrow, &p) in cache.v.iter().zip(&scores) {
                    for (o, &vv) in ctx[off..off + d].iter_mut().zip(&vrow[off..off + d]) {
                        *o += p * vv;
                    }
                }
            }
            let proj = layer.wo.matvec(&ctx);
            for (xi, pi) in x.iter_mut().zip(&proj) {
                *xi += pi;
            }

            // FFN block.
            let normed2 = layer_norm(&x, &layer.ln2_gain, &layer.ln2_bias, 1e-5);
            let mut up = layer.w_up.matvec(&normed2);
            for u in &mut up {
                *u = gelu(*u);
            }
            let down = layer.w_down.matvec(&up);
            for (xi, di) in x.iter_mut().zip(&down) {
                *xi += di;
            }
        }
        self.tokens_seen += 1;
        let final_normed = layer_norm(&x, &self.model.final_gain, &self.model.final_bias, 1e-5);
        self.model.lm_head.matvec(&final_normed)
    }

    /// Prefills a prompt and then greedily generates `n` tokens.
    ///
    /// # Panics
    ///
    /// Panics if the prompt is empty or contains out-of-vocabulary ids.
    pub fn generate(&mut self, prompt: &[usize], n: usize) -> Vec<usize> {
        assert!(!prompt.is_empty(), "need a prompt");
        let mut logits = Vec::new();
        for &t in prompt {
            logits = self.feed(t);
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let next = argmax(&logits);
            out.push(next);
            logits = self.feed(next);
        }
        out
    }
}

fn argmax(xs: &[f32]) -> usize {
    xs.iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite logits"))
        .map(|(i, _)| i)
        .expect("non-empty logits")
}

/// Convenience: full-recompute logits for the last position (reference for
/// equivalence tests).
#[must_use]
pub fn last_position_logits(model: &Transformer, tokens: &[usize]) -> Vec<f32> {
    let all: FloatMatrix = model.forward_f32(tokens);
    all.row(all.rows() - 1).to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TransformerConfig;

    #[test]
    fn cached_decode_matches_full_recompute() {
        let model = Transformer::random(TransformerConfig::tiny(), 21);
        let tokens = [3usize, 17, 44, 9, 61, 2];
        let mut generator = Generator::new(&model);
        let mut cached_logits = Vec::new();
        for &t in &tokens {
            cached_logits = generator.feed(t);
        }
        let reference = last_position_logits(&model, &tokens);
        for (a, b) in cached_logits.iter().zip(&reference) {
            assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
    }

    #[test]
    fn greedy_generation_matches_stateless_path() {
        let model = Transformer::random(TransformerConfig::tiny(), 5);
        let prompt = [1usize, 2, 3, 4];
        let mut generator = Generator::new(&model);
        let generated = generator.generate(&prompt, 4);

        // Stateless reference: extend the sequence token by token.
        let mut seq = prompt.to_vec();
        let mut expected = Vec::new();
        for _ in 0..4 {
            let next = model.greedy_next(&seq);
            expected.push(next);
            seq.push(next);
        }
        assert_eq!(generated, expected);
    }

    #[test]
    fn kv_bytes_grow_linearly_with_context() {
        let model = Transformer::random(TransformerConfig::tiny(), 1);
        let mut generator = Generator::new(&model);
        let _ = generator.feed(1);
        let one = generator.kv_bytes();
        let _ = generator.feed(2);
        assert_eq!(generator.kv_bytes(), 2 * one);
        assert_eq!(generator.context_len(), 2);
    }

    #[test]
    #[should_panic(expected = "out of vocabulary")]
    fn oov_token_rejected() {
        let model = Transformer::random(TransformerConfig::tiny(), 1);
        let mut generator = Generator::new(&model);
        let _ = generator.feed(10_000);
    }
}
