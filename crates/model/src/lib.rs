//! Transformer/LLM substrate for the MCBP reproduction.
//!
//! Two layers of abstraction live here:
//!
//! 1. **Shape-level model configs** ([`LlmConfig`]): the five evaluation
//!    models of the paper (OPT-1.3B, Bloom-1.7B, Qwen-7B, Llama-7B,
//!    Llama-13B) and the exact GEMM inventory each layer issues during
//!    prefill and decode ([`layer_ops`], [`OpDescriptor`]). These drive the
//!    cycle-level simulator and every baseline model.
//!
//! 2. **A functional reference transformer** ([`Transformer`],
//!    [`QuantTransformer`]): a small but complete decoder-only model
//!    (embeddings, causal multi-head attention with KV cache, GELU FFN,
//!    LayerNorm, logits) that actually executes in FP32 and in the paper's
//!    INT8 scheme (per-channel symmetric weights, per-tensor asymmetric
//!    activations), with a pluggable [`AttentionPruner`] hook so BGPP's
//!    vital-key selection can be measured end to end. This is the fidelity
//!    proxy for Table 2 / Fig 24(a) — see DESIGN.md, substitution 4.
//!
//! # Example
//!
//! ```
//! use mcbp_model::{LlmConfig, Phase};
//!
//! let llama = LlmConfig::llama7b();
//! let ops = mcbp_model::layer_ops(&llama, Phase::Prefill { prompt: 1024 });
//! // QKV + scores + PV + out-proj + 2 FFN GEMMs per layer:
//! assert_eq!(ops.len(), 6);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod config;
pub mod fidelity;
mod kvcache;
mod ops;
mod quantized;
mod transformer;

pub use config::{layer_ops, GemmKind, LlmConfig, OpDescriptor, Phase};
pub use kvcache::{last_position_logits, Generator};
pub use ops::{gelu, layer_norm, softmax_in_place};
pub use quantized::{AttentionPruner, AttnStats, KeepAll, PrunerDecision, QuantTransformer};
pub use transformer::{Transformer, TransformerConfig};
