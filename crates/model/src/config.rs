/// Shape configuration of one evaluation LLM (§5.1 benchmark set).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LlmConfig {
    /// Human-readable name as used in the paper's figures.
    pub name: &'static str,
    /// Hidden dimension `H`.
    pub hidden: usize,
    /// Decoder layers.
    pub layers: usize,
    /// Attention heads.
    pub heads: usize,
    /// FFN intermediate dimension.
    pub ffn: usize,
    /// Vocabulary size.
    pub vocab: usize,
}

impl LlmConfig {
    /// OPT-1.3B.
    #[must_use]
    pub fn opt1b3() -> Self {
        LlmConfig {
            name: "OPT1B3",
            hidden: 2048,
            layers: 24,
            heads: 32,
            ffn: 8192,
            vocab: 50272,
        }
    }

    /// Bloom-1.7B.
    #[must_use]
    pub fn bloom1b7() -> Self {
        LlmConfig {
            name: "Bloom1B7",
            hidden: 2048,
            layers: 24,
            heads: 16,
            ffn: 8192,
            vocab: 250_880,
        }
    }

    /// Qwen-7B.
    #[must_use]
    pub fn qwen7b() -> Self {
        LlmConfig {
            name: "Qwen7B",
            hidden: 4096,
            layers: 32,
            heads: 32,
            ffn: 11008,
            vocab: 151_936,
        }
    }

    /// Llama-7B (Llama-2).
    #[must_use]
    pub fn llama7b() -> Self {
        LlmConfig {
            name: "Llama7B",
            hidden: 4096,
            layers: 32,
            heads: 32,
            ffn: 11008,
            vocab: 32000,
        }
    }

    /// Llama-13B (Llama-2).
    #[must_use]
    pub fn llama13b() -> Self {
        LlmConfig {
            name: "Llama13B",
            hidden: 5120,
            layers: 40,
            heads: 40,
            ffn: 13824,
            vocab: 32000,
        }
    }

    /// The paper's five-model benchmark suite, smallest first.
    #[must_use]
    pub fn paper_suite() -> Vec<LlmConfig> {
        vec![
            Self::opt1b3(),
            Self::bloom1b7(),
            Self::qwen7b(),
            Self::llama7b(),
            Self::llama13b(),
        ]
    }

    /// Per-head dimension.
    #[must_use]
    pub fn head_dim(&self) -> usize {
        self.hidden / self.heads
    }

    /// Total weight parameters of the decoder stack (embeddings excluded):
    /// 4 attention projections + 2 FFN matrices per layer.
    #[must_use]
    pub fn decoder_params(&self) -> u64 {
        let h = self.hidden as u64;
        let f = self.ffn as u64;
        self.layers as u64 * (4 * h * h + 2 * h * f)
    }

    /// KV-cache bytes for a context of `len` tokens at `bytes_per_value`
    /// precision (both K and V, all layers).
    #[must_use]
    pub fn kv_cache_bytes(&self, len: usize, bytes_per_value: u64) -> u64 {
        2 * self.layers as u64 * len as u64 * self.hidden as u64 * bytes_per_value
    }
}

/// Which inference phase an op belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Prompt processing: all `prompt` tokens in parallel.
    Prefill {
        /// Prompt length in tokens.
        prompt: usize,
    },
    /// One autoregressive step with `context` tokens already cached.
    Decode {
        /// Current context length (prompt + generated so far).
        context: usize,
    },
}

/// The role a GEMM plays — determines which MCBP/baseline optimizations
/// apply to it (weights are compressible and repetitive; attention operands
/// are dynamic; KV GEMMs are gated by top-k prediction).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GemmKind {
    /// Static-weight projection (QKV / output / FFN).
    Weight,
    /// `Q · K^T` score computation (touches the K cache).
    AttentionQk,
    /// `P · V` context computation (touches the V cache).
    AttentionPv,
}

/// One GEMM issued by a layer: `M×K · K×N`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpDescriptor {
    /// Role of the op.
    pub kind: GemmKind,
    /// Output rows.
    pub m: usize,
    /// Inner dimension.
    pub k: usize,
    /// Output columns.
    pub n: usize,
    /// Number of independent instances (e.g. per-head attention GEMMs).
    pub count: usize,
}

impl OpDescriptor {
    /// Multiply–accumulate operations across all instances.
    #[must_use]
    pub fn macs(&self) -> u64 {
        self.m as u64 * self.k as u64 * self.n as u64 * self.count as u64
    }

    /// Bytes of static weight data consumed (zero for attention ops) at
    /// `bytes_per_value` precision.
    #[must_use]
    pub fn weight_bytes(&self, bytes_per_value: u64) -> u64 {
        match self.kind {
            GemmKind::Weight => self.k as u64 * self.n as u64 * bytes_per_value * self.count as u64,
            GemmKind::AttentionQk | GemmKind::AttentionPv => 0,
        }
    }

    /// Bytes of KV-cache data consumed (zero for weight ops).
    #[must_use]
    pub fn kv_bytes(&self, bytes_per_value: u64) -> u64 {
        match self.kind {
            GemmKind::Weight => 0,
            // K cache: K columns of the score GEMM; V cache: K rows of PV.
            GemmKind::AttentionQk => {
                self.k as u64 * self.n as u64 * bytes_per_value * self.count as u64
            }
            GemmKind::AttentionPv => {
                self.k as u64 * self.n as u64 * bytes_per_value * self.count as u64
            }
        }
    }
}

/// The GEMM inventory of **one** decoder layer in the given phase (weights
/// are `out × in`; activations multiply from the right).
///
/// Prefill with `S` tokens: QKV (3 fused into one 3H-wide projection),
/// per-head `S×d·d×S` scores, per-head `S×S·S×d` PV, output projection,
/// FFN up, FFN down. Decode is the same with `S = 1` and attention width
/// equal to the cached context.
#[must_use]
pub fn layer_ops(cfg: &LlmConfig, phase: Phase) -> Vec<OpDescriptor> {
    let h = cfg.hidden;
    let d = cfg.head_dim();
    let (s, ctx) = match phase {
        Phase::Prefill { prompt } => (prompt, prompt),
        Phase::Decode { context } => (1, context),
    };
    vec![
        OpDescriptor {
            kind: GemmKind::Weight,
            m: s,
            k: h,
            n: 3 * h,
            count: 1,
        }, // QKV
        OpDescriptor {
            kind: GemmKind::AttentionQk,
            m: s,
            k: d,
            n: ctx,
            count: cfg.heads,
        },
        OpDescriptor {
            kind: GemmKind::AttentionPv,
            m: s,
            k: ctx,
            n: d,
            count: cfg.heads,
        },
        OpDescriptor {
            kind: GemmKind::Weight,
            m: s,
            k: h,
            n: h,
            count: 1,
        }, // out proj
        OpDescriptor {
            kind: GemmKind::Weight,
            m: s,
            k: h,
            n: cfg.ffn,
            count: 1,
        }, // FFN up
        OpDescriptor {
            kind: GemmKind::Weight,
            m: s,
            k: cfg.ffn,
            n: h,
            count: 1,
        }, // FFN down
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn llama7b_params_about_6_5b_decoder() {
        let cfg = LlmConfig::llama7b();
        let p = cfg.decoder_params();
        // 32 × (4·4096² + 2·4096·11008) = 5.03e9 decoder params.
        assert!(p > 4_800_000_000 && p < 5_300_000_000, "{p}");
    }

    #[test]
    fn prefill_inventory_shapes() {
        let cfg = LlmConfig::llama7b();
        let ops = layer_ops(&cfg, Phase::Prefill { prompt: 2048 });
        assert_eq!(ops.len(), 6);
        assert!(matches!(ops[0].kind, GemmKind::Weight));
        assert_eq!(ops[0].n, 3 * 4096);
        let qk = &ops[1];
        assert_eq!((qk.m, qk.k, qk.n, qk.count), (2048, 128, 2048, 32));
    }

    #[test]
    fn decode_is_single_row() {
        let cfg = LlmConfig::opt1b3();
        let ops = layer_ops(&cfg, Phase::Decode { context: 4096 });
        for op in &ops {
            assert_eq!(op.m, 1, "decode GEMMs are GEMVs: {op:?}");
        }
        let qk = ops
            .iter()
            .find(|o| o.kind == GemmKind::AttentionQk)
            .unwrap();
        assert_eq!(qk.n, 4096);
    }

    #[test]
    fn weight_and_kv_bytes_are_disjoint() {
        let cfg = LlmConfig::llama7b();
        for op in layer_ops(&cfg, Phase::Decode { context: 1024 }) {
            assert!(op.weight_bytes(1) == 0 || op.kv_bytes(1) == 0);
        }
    }

    #[test]
    fn decode_weight_traffic_matches_params() {
        // Reading every layer's weights once per decode step.
        let cfg = LlmConfig::llama13b();
        let per_layer: u64 = layer_ops(&cfg, Phase::Decode { context: 16 })
            .iter()
            .map(|o| o.weight_bytes(1))
            .sum();
        assert_eq!(per_layer * cfg.layers as u64, cfg.decoder_params());
    }

    #[test]
    fn kv_cache_grows_linearly() {
        let cfg = LlmConfig::qwen7b();
        assert_eq!(cfg.kv_cache_bytes(2000, 1), 2 * cfg.kv_cache_bytes(1000, 1));
    }

    #[test]
    fn paper_suite_is_ordered_and_named() {
        let suite = LlmConfig::paper_suite();
        assert_eq!(suite.len(), 5);
        assert_eq!(suite[3].name, "Llama7B");
    }
}
