//! Facade crate for the MCBP reproduction workspace.
//!
//! Hosts the workspace-level examples (`examples/`) and cross-crate
//! integration tests (`tests/`). All functionality lives in the member
//! crates re-exported by [`mcbp`].
pub use mcbp as core;
